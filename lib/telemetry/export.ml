let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ escape_json s ^ "\""

(* JSON has no NaN/inf; clamp to null *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_value = function
  | Telemetry.Int i -> string_of_int i
  | Telemetry.Float f -> json_float f
  | Telemetry.String s -> json_string s

let comma_sep buf items render =
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string buf ",";
      render x)
    items

let metrics_json tel =
  let reg = Telemetry.registry tel in
  let counters, gauges, histograms =
    Registry.fold reg ~init:([], [], []) ~f:(fun (cs, gs, hs) m ->
        match m with
        | Registry.Counter c -> ((Registry.name m, c) :: cs, gs, hs)
        | Registry.Gauge g -> (cs, (Registry.name m, g) :: gs, hs)
        | Registry.Histogram h -> (cs, gs, (Registry.name m, h) :: hs))
  in
  let counters = List.rev counters
  and gauges = List.rev gauges
  and histograms = List.rev histograms in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n  \"counters\": {";
  comma_sep buf counters (fun (n, c) ->
      add (Printf.sprintf "\n    %s: %d" (json_string n) (Registry.count c)));
  add (if counters = [] then "},\n" else "\n  },\n");
  add "  \"gauges\": {";
  comma_sep buf gauges (fun (n, g) ->
      add (Printf.sprintf "\n    %s: %s" (json_string n) (json_float (Registry.value g))));
  add (if gauges = [] then "},\n" else "\n  },\n");
  add "  \"histograms\": {";
  comma_sep buf histograms (fun (n, h) ->
      add
        (Printf.sprintf "\n    %s: { \"observations\": %d, \"sum\": %d, \"buckets\": ["
           (json_string n) (Registry.observations h) (Registry.sum h));
      comma_sep buf (Registry.nonempty_buckets h) (fun (i, c) ->
          add
            (Printf.sprintf "{ \"ge\": %d, \"count\": %d }" (Registry.bucket_lower_bound i) c));
      add "] }");
  add (if histograms = [] then "},\n" else "\n  },\n");
  add "  \"snapshots\": [";
  comma_sep buf (Telemetry.snapshots tel) (fun (s : Telemetry.snapshot) ->
      add (Printf.sprintf "\n    { \"seq\": %d, \"label\": %s" s.Telemetry.seq
             (json_string s.Telemetry.label));
      List.iter
        (fun (k, v) -> add (Printf.sprintf ", %s: %s" (json_string k) (json_value v)))
        s.Telemetry.fields;
      add " }");
  add (if Telemetry.snapshots tel = [] then "],\n" else "\n  ],\n");
  let sp = Telemetry.spans tel in
  add "  \"spans\": {";
  comma_sep buf
    (List.filter (fun k -> Span.count sp k > 0 || Span.open_now sp k > 0) Span.all)
    (fun k ->
      add
        (Printf.sprintf
           "\n    %s: { \"count\": %d, \"total_ns\": %d, \"open\": %d, \"parent\": %s }"
           (json_string (Span.name k)) (Span.count sp k) (Span.total_ns sp k)
           (Span.open_now sp k)
           (match Span.parent k with
           | None -> "null"
           | Some p -> json_string (Span.name p))));
  add
    (if List.for_all (fun k -> Span.count sp k = 0 && Span.open_now sp k = 0) Span.all then
       "},\n"
     else "\n  },\n");
  let ts = Telemetry.series tel in
  add "  \"timeseries\": { \"columns\": [";
  comma_sep buf (Timeseries.columns ts) (fun c -> add (json_string c));
  add
    (Printf.sprintf "], \"appended\": %d, \"retained\": %d },\n" (Timeseries.appended ts)
       (Timeseries.length ts));
  let tr = Telemetry.tracer tel in
  add
    (Printf.sprintf "  \"trace\": { \"emitted\": %d, \"retained\": %d }\n}\n"
       (Tracer.emitted tr) (Tracer.length tr));
  Buffer.contents buf

(* quote a CSV field only when it needs it *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let metrics_csv tel =
  let buf = Buffer.create 1024 in
  let row kind name value =
    Buffer.add_string buf (Printf.sprintf "%s,%s,%s\n" kind (csv_field name) value)
  in
  Buffer.add_string buf "kind,name,value\n";
  Registry.fold (Telemetry.registry tel) ~init:() ~f:(fun () m ->
      let name = Registry.name m in
      match m with
      | Registry.Counter c -> row "counter" name (string_of_int (Registry.count c))
      | Registry.Gauge g -> row "gauge" name (Printf.sprintf "%.6g" (Registry.value g))
      | Registry.Histogram h ->
        row "histogram" (name ^ ".observations") (string_of_int (Registry.observations h));
        row "histogram" (name ^ ".sum") (string_of_int (Registry.sum h));
        List.iter
          (fun (i, c) ->
            row "histogram"
              (Printf.sprintf "%s.ge_%d" name (Registry.bucket_lower_bound i))
              (string_of_int c))
          (Registry.nonempty_buckets h));
  let sp = Telemetry.spans tel in
  List.iter
    (fun k ->
      if Span.count sp k > 0 || Span.open_now sp k > 0 then begin
        let n = Span.name k in
        row "span" (n ^ ".count") (string_of_int (Span.count sp k));
        row "span" (n ^ ".total_ns") (string_of_int (Span.total_ns sp k));
        row "span" (n ^ ".open") (string_of_int (Span.open_now sp k))
      end)
    Span.all;
  Buffer.contents buf

(* Wide trace rows: every event kind fills the columns it has. *)
let trace_columns =
  [
    "event"; "cp"; "space"; "aa"; "score"; "ops"; "blocks"; "freed"; "pages"; "listed";
    "tetrises"; "full_stripes"; "partial_stripes"; "aas"; "relocated"; "reclaimed";
    "device_us"; "transients"; "torn"; "failed"; "spikes"; "retries"; "ok";
    "slo"; "burn_fast"; "burn_slow"; "violations";
  ]

(* Trace fields whose values are strings, not numbers (for trace_json). *)
let string_field k = k = "event" || k = "slo"

let event_fields (ev : Tracer.event) =
  match ev with
  | Tracer.Cp_begin _ -> []
  | Tracer.Cp_end e ->
    [
      ("ops", string_of_int e.ops);
      ("blocks", string_of_int e.blocks);
      ("freed", string_of_int e.freed);
      ("pages", string_of_int e.pages);
      ("device_us", Printf.sprintf "%.3f" e.device_us);
    ]
  | Tracer.Aa_pick e ->
    [
      ("space", string_of_int e.space);
      ("aa", string_of_int e.aa);
      ("score", string_of_int e.score);
    ]
  | Tracer.Cache_replenish e ->
    [ ("space", string_of_int e.space); ("listed", string_of_int e.listed) ]
  | Tracer.Tetris_write e ->
    [
      ("space", string_of_int e.space);
      ("tetrises", string_of_int e.tetrises);
      ("full_stripes", string_of_int e.full_stripes);
      ("partial_stripes", string_of_int e.partial_stripes);
    ]
  | Tracer.Cleaner_pass e ->
    [
      ("aas", string_of_int e.aas);
      ("relocated", string_of_int e.relocated);
      ("reclaimed", string_of_int e.reclaimed);
    ]
  | Tracer.Free_commit e ->
    [
      ("space", string_of_int e.space);
      ("freed", string_of_int e.freed);
      ("pages", string_of_int e.pages);
    ]
  | Tracer.Fault_inject e ->
    [
      ("space", string_of_int e.space);
      ("transients", string_of_int e.transients);
      ("torn", string_of_int e.torn);
      ("failed", string_of_int e.failed);
      ("spikes", string_of_int e.spikes);
    ]
  | Tracer.Io_retry e ->
    [
      ("space", string_of_int e.space);
      ("retries", string_of_int e.retries);
      ("ok", string_of_int e.ok);
    ]
  | Tracer.Slo_violation e ->
    [
      ("slo", e.slo);
      ("burn_fast", Printf.sprintf "%.3f" e.burn_fast);
      ("burn_slow", Printf.sprintf "%.3f" e.burn_slow);
      ("violations", string_of_int e.violations);
    ]

let trace_csv tel =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," trace_columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun ev ->
      let fields =
        ("event", Tracer.event_name ev)
        :: ("cp", string_of_int (Tracer.event_cp ev))
        :: event_fields ev
      in
      let cells =
        List.map
          (fun col -> match List.assoc_opt col fields with Some v -> csv_field v | None -> "")
          trace_columns
      in
      Buffer.add_string buf (String.concat "," cells);
      Buffer.add_char buf '\n')
    (Tracer.to_list (Telemetry.tracer tel));
  Buffer.contents buf

let trace_json tel =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  comma_sep buf
    (Tracer.to_list (Telemetry.tracer tel))
    (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "\n  { \"event\": %s, \"cp\": %d" (json_string (Tracer.event_name ev))
           (Tracer.event_cp ev));
      List.iter
        (fun (k, v) ->
          let rendered =
            (* numeric fields stay numeric in JSON *)
            if string_field k then json_string v else v
          in
          Buffer.add_string buf (Printf.sprintf ", %s: %s" (json_string k) rendered))
        (event_fields ev);
      Buffer.add_string buf " }");
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* Series cells must parse back to the exact recorded float: integers (the
   common case — counts, ns) print without an exponent, anything else gets
   17 significant digits, which round-trips every finite double. *)
let series_cell f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let timeseries_json tel =
  let ts = Telemetry.series tel in
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n  \"columns\": [";
  comma_sep buf (Timeseries.columns ts) (fun c -> add (json_string c));
  add (Printf.sprintf "],\n  \"appended\": %d,\n  \"retained\": %d,\n  \"rows\": ["
         (Timeseries.appended ts) (Timeseries.length ts));
  comma_sep buf (Timeseries.rows ts) (fun row ->
      add "\n    [";
      Array.iteri
        (fun i v ->
          if i > 0 then add ",";
          add (if Float.is_finite v then series_cell v else "null"))
        row;
      add "]");
  add (if Timeseries.length ts = 0 then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf

(* --- Prometheus text exposition (version 0.0.4) --- *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; the registry uses dotted names,
   so dots (and any other illegal character) become underscores, and
   everything gets a "wafl_" prefix. *)
let prom_name s =
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
        || (i > 0 && c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  "wafl_" ^ Bytes.to_string b

let prom_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let metrics_prom tel =
  let buf = Buffer.create 8192 in
  let add = Buffer.add_string buf in
  Registry.fold (Telemetry.registry tel) ~init:() ~f:(fun () m ->
      let n = prom_name (Registry.name m) in
      match m with
      | Registry.Counter c ->
        add (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n (Registry.count c))
      | Registry.Gauge g ->
        add
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n
             (prom_float (Registry.value g)))
      | Registry.Histogram h ->
        (* Power-of-two buckets; le is each bucket's inclusive upper bound. *)
        add (Printf.sprintf "# TYPE %s histogram\n" n);
        let cum = ref 0 in
        List.iter
          (fun (i, c) ->
            cum := !cum + c;
            let le = if i = 0 then 0 else (1 lsl i) - 1 in
            add (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le !cum))
          (Registry.nonempty_buckets h);
        add (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Registry.observations h));
        add (Printf.sprintf "%s_sum %d\n" n (Registry.sum h));
        add (Printf.sprintf "%s_count %d\n" n (Registry.observations h)));
  let sp = Telemetry.spans tel in
  List.iter
    (fun k ->
      if Span.count sp k > 0 then begin
        let n = prom_name ("span." ^ Span.name k) in
        add
          (Printf.sprintf "# TYPE %s_count counter\n%s_count %d\n" n n
             (Span.count sp k));
        add
          (Printf.sprintf "# TYPE %s_total_ns counter\n%s_total_ns %d\n" n n
             (Span.total_ns sp k))
      end)
    Span.all;
  (match Telemetry.latency tel with
  | None -> ()
  | Some lat ->
    let name = "wafl_op_latency_ms" in
    add (Printf.sprintf "# TYPE %s histogram\n" name);
    let vols = Latency.vols lat in
    List.iter
      (fun op ->
        List.iter
          (fun (slot, vname) ->
            let h = Latency.merged ~op ~vol:slot lat in
            if Hdrhist.count h > 0 then begin
              let labels =
                Printf.sprintf "op=\"%s\",vol=\"%s\"" (Latency.op_name op)
                  (prom_label_value vname)
              in
              let cum = ref 0 in
              Hdrhist.iter_nonempty h (fun ~lo:_ ~hi ~count ->
                  cum := !cum + count;
                  add
                    (Printf.sprintf "%s_bucket{%s,le=\"%s\"} %d\n" name labels
                       (prom_float (float_of_int hi /. 1e6))
                       !cum));
              add
                (Printf.sprintf "%s_bucket{%s,le=\"+Inf\"} %d\n" name labels
                   (Hdrhist.count h));
              add
                (Printf.sprintf "%s_sum{%s} %s\n" name labels
                   (prom_float (float_of_int (Hdrhist.sum h) /. 1e6)));
              add (Printf.sprintf "%s_count{%s} %d\n" name labels (Hdrhist.count h))
            end)
          vols)
      Latency.all_ops;
    (* Headline quantiles as gauges, overall and per volume. *)
    let q name' labels (p50, p99, p999) =
      add (Printf.sprintf "# TYPE %s gauge\n" name');
      add
        (Printf.sprintf "%s{%squantile=\"0.5\"} %s\n" name' labels
           (prom_float p50));
      add
        (Printf.sprintf "%s{%squantile=\"0.99\"} %s\n" name' labels
           (prom_float p99));
      add
        (Printf.sprintf "%s{%squantile=\"0.999\"} %s\n" name' labels
           (prom_float p999))
    in
    if Latency.ops_recorded lat > 0 then begin
      q "wafl_op_latency_quantile_ms" "" (Latency.quantiles_ms lat);
      List.iter
        (fun (slot, vname) ->
          q "wafl_op_latency_vol_quantile_ms"
            (Printf.sprintf "vol=\"%s\"," (prom_label_value vname))
            (Latency.quantiles_ms ~vol:slot lat))
        vols
    end);
  Buffer.contents buf

let timeseries_csv tel =
  let ts = Telemetry.series tel in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," (List.map csv_field (Timeseries.columns ts)));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (if Float.is_finite v then series_cell v else "nan"))
        row;
      Buffer.add_char buf '\n')
    (Timeseries.rows ts);
  Buffer.contents buf
