(** Volume block numbers.

    WAFL addresses every block by a VBN.  An aggregate block has a
    {e physical} VBN (PVBN); a block inside a FlexVol additionally has a
    {e virtual} VBN (VVBN) giving its offset within the volume (§2.1).  The
    two number spaces are distinct; the phantom parameter keeps them from
    being mixed up at compile time. *)

type phys
type virt

type 'a t = private int

val of_int : int -> 'a t
(** Must be non-negative. *)

val to_int : 'a t -> int

val phys : int -> phys t
val virt : int -> virt t

val add : 'a t -> int -> 'a t
val diff : 'a t -> 'a t -> int
val compare : 'a t -> 'a t -> int
val equal : 'a t -> 'a t -> bool
val pp : Format.formatter -> 'a t -> unit
