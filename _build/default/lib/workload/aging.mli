(** File-system aging (§2.2, §4.1).

    The paper's rigs are prepared by filling the aggregate to a target
    fullness and then applying heavy random-overwrite traffic until the
    free space is thoroughly fragmented — random overwrites are the
    worst case for a COW file system because every overwrite frees the
    previously used block at a random location. *)

type spec = {
  fill_fraction : float;      (** e.g. 0.55 for the §4.1 rig *)
  fragmentation_cps : int;    (** CPs of random-overwrite churn *)
  writes_per_cp : int;
  file : int;                 (** file id used for the working set *)
}

val default : spec

val fill : Wafl_core.Fs.t -> Wafl_core.Flexvol.t -> spec -> int
(** Sequentially write the working set until the aggregate reaches the fill
    fraction; returns the number of file blocks written (the working-set
    size subsequent overwrites should target). *)

val fragment :
  Wafl_core.Fs.t -> Wafl_core.Flexvol.t -> spec -> working_set:int ->
  rng:Wafl_util.Rng.t -> unit
(** Random-overwrite churn over the working set. *)

val age : Wafl_core.Fs.t -> Wafl_core.Flexvol.t -> ?spec:spec -> rng:Wafl_util.Rng.t -> unit -> int
(** [fill] then [fragment]; returns the working-set size. *)

val free_space_contiguity : Wafl_core.Fs.t -> float
(** Mean free-run length in the aggregate's physical space, a direct
    fragmentation measure (long runs = long write chains available). *)
