lib/core/write_alloc.ml: Aggregate Array Cache Config Flexvol Hashtbl List Metafile Option Rng Score Topology Wafl_aa Wafl_aacache Wafl_bitmap Wafl_util
