lib/experiments/common.mli: Wafl_core Wafl_device
