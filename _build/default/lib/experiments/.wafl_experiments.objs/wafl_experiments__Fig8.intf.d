lib/experiments/fig8.mli: Common Wafl_sim
