(* Fixed-size domain pool with deterministic chunk scheduling.

   Work is expressed as [chunks] indexed closures.  An atomic counter
   hands indices out to whichever domain is free, so load-balancing is
   dynamic, but determinism is preserved structurally: every index runs
   exactly once, results go to slots keyed by index, and failures are
   reported as the lowest failed index (what a serial ascending loop
   would have raised first).

   Completion is a hybrid wait: the caller drains chunks itself, spins
   briefly on the atomic pending counter (cheap for the common case
   where workers finish within microseconds), then blocks on a
   condition variable signalled by whichever domain retires the last
   chunk.  The final decrement of [pending] is the release/acquire edge
   that publishes the workers' non-atomic result writes to the
   caller. *)

type task = {
  f : int -> unit;
  next : int Atomic.t;
  total : int;
  pending : int Atomic.t;
  failed : (int * exn) option Atomic.t;
}

type t = {
  jobs : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable task : task option;
  mutable generation : int;
  mutable stop : bool;
  busy : bool Atomic.t;
  mutable live : bool;
}

let jobs t = t.jobs

(* Keep the lowest-index failure: serial order raises it first. *)
let record_failure task idx exn =
  let rec loop () =
    match Atomic.get task.failed with
    | Some (i, _) when i <= idx -> ()
    | cur ->
      if not (Atomic.compare_and_set task.failed cur (Some (idx, exn))) then loop ()
  in
  loop ()

let drain t task =
  let rec go () =
    let i = Atomic.fetch_and_add task.next 1 in
    if i < task.total then begin
      (try task.f i with exn -> record_failure task i exn);
      if Atomic.fetch_and_add task.pending (-1) = 1 then begin
        (* Last chunk retired: wake a caller blocked in [await]. *)
        Mutex.lock t.m;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.m
      end;
      go ()
    end
  in
  go ()

let rec worker_loop t gen =
  Mutex.lock t.m;
  while (not t.stop) && t.generation = gen do
    Condition.wait t.work_cv t.m
  done;
  let stop = t.stop in
  let gen = t.generation in
  let task = t.task in
  Mutex.unlock t.m;
  if not stop then begin
    (match task with Some task -> drain t task | None -> ());
    worker_loop t gen
  end

let serial ~chunks ~f =
  for i = 0 to chunks - 1 do
    f i
  done

let spin_budget = 2_000

let await t task =
  let spins = ref 0 in
  while Atomic.get task.pending > 0 && !spins < spin_budget do
    incr spins;
    Domain.cpu_relax ()
  done;
  if Atomic.get task.pending > 0 then begin
    Mutex.lock t.m;
    while Atomic.get task.pending > 0 do
      Condition.wait t.done_cv t.m
    done;
    Mutex.unlock t.m
  end

let run_parallel t ~chunks ~f =
  let task =
    {
      f;
      next = Atomic.make 0;
      total = chunks;
      pending = Atomic.make chunks;
      failed = Atomic.make None;
    }
  in
  Mutex.lock t.m;
  t.task <- Some task;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.m;
  drain t task;
  await t task;
  match Atomic.get task.failed with None -> () | Some (_, exn) -> raise exn

let run t ~chunks ~f =
  if chunks <= 0 then ()
  else if t.jobs <= 1 || (not t.live) || chunks = 1 then serial ~chunks ~f
  else if not (Atomic.compare_and_set t.busy false true) then
    (* Nested run (e.g. issued from inside a chunk): inline serially
       rather than deadlocking on the single task slot. *)
    serial ~chunks ~f
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.busy false)
      (fun () -> run_parallel t ~chunks ~f)

let map t ~chunks ~f =
  if chunks <= 0 then [||]
  else begin
    (* Chunk 0 runs inline to seed the array; an exception here is what
       serial order would raise first, so letting it escape is correct. *)
    let first = f 0 in
    let out = Array.make chunks first in
    if chunks > 1 then run t ~chunks:(chunks - 1) ~f:(fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let create ~jobs =
  let jobs = if jobs < 1 then 1 else jobs in
  let t =
    {
      jobs;
      workers = [||];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      task = None;
      generation = 0;
      stop = false;
      busy = Atomic.make false;
      live = true;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let shutdown t =
  if t.live then begin
    t.live <- false;
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let chunk_bounds ~total ~align ~chunks =
  if total <= 0 then [||]
  else begin
    let align = if align <= 0 then 1 else align in
    let chunks = if chunks <= 0 then 1 else chunks in
    let units = (total + align - 1) / align in
    let n = if chunks < units then chunks else units in
    Array.init n (fun i ->
        let u0 = units * i / n in
        let u1 = units * (i + 1) / n in
        let start = u0 * align in
        let stop = if u1 * align < total then u1 * align else total in
        (start, stop - start))
  end

(* Process-wide default, mirroring Telemetry.install. *)

let default : t option ref = ref None

let uninstall () =
  match !default with
  | None -> ()
  | Some t ->
    default := None;
    shutdown t

let install ~jobs =
  uninstall ();
  default := Some (create ~jobs)

let installed () = !default
let resolve = function Some _ as p -> p | None -> !default
let effective_jobs pool = match resolve pool with Some t -> jobs t | None -> 1
