lib/aacache/topaa.mli: Bytes Format Hbps Max_heap
