lib/raid/group.mli: Format Geometry Stripe Tetris
