lib/util/bitops.mli:
