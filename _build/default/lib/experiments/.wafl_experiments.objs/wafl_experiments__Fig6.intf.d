lib/experiments/fig6.mli: Common Wafl_sim
