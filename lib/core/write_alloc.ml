open Wafl_util
open Wafl_bitmap
open Wafl_aa
open Wafl_aacache
open Wafl_telemetry
module Par = Wafl_par.Par

(* Below this AA capacity a sharded harvest's chunk setup costs more than
   the word loop it spreads out; Quick-scale AAs (4096 blocks) stay on the
   serial kernel, Full-scale AAs (16384) shard. *)
let min_sharded_capacity = 8192

(* Per-range (or per-volume) allocation cursor: a preallocated ring holding
   the free VBNs of the AA currently being filled (harvested word-at-a-time,
   consumed front to back), plus the AAs taken since the last CP.  The ring
   is sized to a full AA once, at cursor creation, so the steady-state
   pick -> harvest -> allocate loop allocates no per-block heap words. *)
type cursor = {
  mutable ring : int array;       (* harvested free VBNs; [head, len) live *)
  mutable head : int;
  mutable len : int;
  mutable ring_aa : int;          (* the AA the live entries belong to *)
  mutable ring_epoch : int;       (* CP epoch the live entries were harvested in *)
  taken : (int, unit) Hashtbl.t;  (* AAs checked out of the cache *)
  quarantined : (int, unit) Hashtbl.t;  (* AAs overlapping device bad ranges *)
  mutable scan_pos : int;         (* First_fit scan position *)
}

type t = {
  aggregate : Aggregate.t;
  rng : Rng.t;
  cursors : cursor array;                 (* one per physical range *)
  mutable vols : (Flexvol.t * cursor) list;
  mutable epoch : int;                    (* bumped at every cp_finish *)
  words : int ref;                        (* cumulative 32-bit bitmap words read *)
  mutable harvested : int;                (* cumulative VBNs harvested into rings *)
  elig : int array;                       (* scratch: eligible range indices *)
  weight : int array;                     (* scratch: weight per eligible entry *)
  mutable shards : int array array;       (* per-domain harvest rings (lazy) *)
  mutable phys_taken : int;
  mutable phys_score_sum : int;
  mutable virt_taken : int;
  mutable virt_score_sum : int;
  mutable candidates_scanned : int;
}

let new_cursor ~capacity =
  {
    ring = Array.make (max 1 capacity) 0;
    head = 0;
    len = 0;
    ring_aa = 0;
    ring_epoch = 0;
    taken = Hashtbl.create 16;
    quarantined = Hashtbl.create 8;
    scan_pos = 0;
  }

let create aggregate ~rng =
  let ranges = Aggregate.ranges aggregate in
  {
    aggregate;
    rng;
    cursors =
      Array.map
        (fun (r : Aggregate.range) ->
          new_cursor ~capacity:(Topology.full_aa_capacity r.Aggregate.topology))
        ranges;
    vols = [];
    epoch = 0;
    words = ref 0;
    harvested = 0;
    elig = Array.make (Array.length ranges) 0;
    weight = Array.make (Array.length ranges) 0;
    shards = [||];
    phys_taken = 0;
    phys_score_sum = 0;
    virt_taken = 0;
    virt_score_sum = 0;
    candidates_scanned = 0;
  }

let aggregate t = t.aggregate

(* Closure- and option-free lookup: volume cursors sit under the
   zero-allocation VVBN take path. *)
let rec find_vol_cursor vols vol =
  match vols with
  | [] -> raise Not_found
  | (v, c) :: rest -> if v == vol then c else find_vol_cursor rest vol

let vol_cursor t vol =
  try find_vol_cursor t.vols vol
  with Not_found ->
    let c = new_cursor ~capacity:(Topology.full_aa_capacity (Flexvol.topology vol)) in
    t.vols <- (vol, c) :: t.vols;
    c

let register_vol t vol = ignore (vol_cursor t vol)

(* Pick the next AA id for a space with [n_aas] AAs under [policy].
   [free_of aa] recomputes the AA's current free count (used by the
   cacheless policies).  [space] labels the pick in the telemetry trace
   (range index, or -1 for a FlexVol); a cache-backed pick is traced by the
   cache itself.  Returns (aa, score-at-take) or None. *)
let pick_aa t cursor ~policy ~space ~cache ~n_aas ~free_of =
  match (policy : Config.allocation_policy) with
  | Config.Best_aa -> (
    match cache with
    | None -> None
    | Some c ->
      (* Skip over empty-scored AAs; bounded so a drained cache terminates. *)
      let rec try_take attempts =
        if attempts = 0 then None
        else begin
          match Cache.take_best c with
          | None -> None
          | Some (aa, score) ->
            Hashtbl.replace cursor.taken aa ();
            if score > 0 then Some (aa, score) else try_take (attempts - 1)
        end
      in
      try_take 8)
  | Config.Random_aa ->
    (* The §4.1 baseline: uniformly random AA, regardless of emptiness. *)
    let rec try_pick attempts =
      if attempts = 0 then None
      else begin
        let aa = Rng.int t.rng n_aas in
        let free = free_of aa in
        if free > 0 then begin
          Telemetry.trace_aa_pick ~space ~aa ~score:free;
          Some (aa, free)
        end
        else try_pick (attempts - 1)
      end
    in
    try_pick 64
  | Config.First_fit ->
    let rec scan steps pos =
      if steps > n_aas then None
      else begin
        let free = free_of pos in
        if free > 0 then begin
          cursor.scan_pos <- (pos + 1) mod n_aas;
          Telemetry.trace_aa_pick ~space ~aa:pos ~score:free;
          Some (pos, free)
        end
        else scan (steps + 1) ((pos + 1) mod n_aas)
      end
    in
    scan 0 cursor.scan_pos

let note_phys_take t score =
  t.phys_taken <- t.phys_taken + 1;
  t.phys_score_sum <- t.phys_score_sum + score

let note_virt_take t score =
  t.virt_taken <- t.virt_taken + 1;
  t.virt_score_sum <- t.virt_score_sum + score

let note_harvest t ~words0 ~count =
  t.harvested <- t.harvested + count;
  Telemetry.add "write_alloc.words_scanned" (!(t.words) - words0);
  Telemetry.add "write_alloc.vbns_harvested" count;
  Telemetry.max_gauge "write_alloc.ring_high_water" (float_of_int count)

(* Drop ring entries that predate the last CP boundary and have since been
   allocated: CP-external writers (mount, aging, repair) may touch the
   bitmap between CPs.  Within one epoch the ring needs no re-check —
   entries are free at harvest, mid-CP frees only queue (the bitmap bit
   stays set until commit), and every allocation drains through this
   cursor — which is what lets the consume path skip the per-block
   [is_allocated] probe the list-based queue paid. *)
let revalidate t cursor mf =
  if cursor.ring_epoch <> t.epoch then begin
    cursor.ring_epoch <- t.epoch;
    let rec compact i k =
      if i >= cursor.len then k
      else begin
        let v = cursor.ring.(i) in
        if Metafile.is_allocated mf v then compact (i + 1) k
        else begin
          cursor.ring.(k) <- v;
          compact (i + 1) (k + 1)
        end
      end
    in
    let live = compact cursor.head 0 in
    cursor.head <- 0;
    cursor.len <- live
  end

(* Does the AA (its range-local extents) overlap a permanent bad range of
   the range's fault device?  Only called with a fault handle attached. *)
let aa_overlaps_fault (range : Aggregate.range) dev aa =
  List.exists
    (fun e ->
      Wafl_fault.Fault.range_faulty dev ~start:(Wafl_block.Extent.start e)
        ~len:(Wafl_block.Extent.len e))
    (Topology.extents_of_aa range.Aggregate.topology aa)

(* Refill a range cursor's ring from the next AA; false when no AA with
   free blocks is available.  A pick can harvest zero blocks even with a
   positive cached score: a ring that survived the last CP may have already
   consumed the AA's blocks that the CP re-filed it with.  Such an AA is
   simply spent — retry with the next pick.

   With a fault device attached, an AA overlapping a permanent bad range is
   quarantined instead of harvested: it leaves the cursor's taken set (so
   cp_finish never re-files it) and the pick retries.  Quarantine retries
   are bounded so the cacheless policies (which pick by free count and
   cannot learn) give up instead of spinning on an all-bad range. *)
(* Per-domain scratch rings for the sharded harvest, grown to the largest
   (jobs, capacity) seen.  Refill is off the consume window, so sizing (and
   the pool dispatch below) may allocate; the per-block loops inside the
   harvest kernels still do not. *)
let ensure_shards t ~jobs ~capacity =
  if
    Array.length t.shards < jobs
    || (Array.length t.shards > 0 && Array.length t.shards.(0) < capacity)
  then t.shards <- Array.init jobs (fun _ -> Array.make capacity 0);
  t.shards

(* Harvest an AA into the cursor's ring: serial kernel for small AAs (or
   without a pool), the pool-sharded kernel — bit-identical ring contents,
   see {!Aggregate.harvest_free_of_aa_sharded} — for large ones. *)
let harvest_range t range aa ~(cursor : cursor) =
  let capacity = Array.length cursor.ring in
  match Par.resolve None with
  | Some p when Par.jobs p > 1 && capacity >= min_sharded_capacity ->
    let shards = ensure_shards t ~jobs:(Par.jobs p) ~capacity in
    Aggregate.harvest_free_of_aa_sharded p t.aggregate range aa ~shards ~dst:cursor.ring
      ~words:t.words
  | _ -> Aggregate.harvest_free_of_aa t.aggregate range aa ~dst:cursor.ring ~words:t.words

let rec refill_range_guarded t range cursor qbudget =
  (* Lazy-mount first touch: a stale range materializes its exact scores
     and cache here, before the pick trusts either. *)
  Rebuild.touch_range t.aggregate range;
  let policy = (Aggregate.config t.aggregate).Config.aggregate_policy in
  Telemetry.span_enter Span.Pick;
  let picked =
    pick_aa t cursor ~policy ~space:range.Aggregate.index ~cache:range.Aggregate.cache
      ~n_aas:(Topology.aa_count range.Aggregate.topology)
      ~free_of:(fun aa -> Aggregate.aa_score_now t.aggregate range aa)
  in
  Telemetry.span_exit Span.Pick;
  match picked with
  | None -> false
  | Some (aa, score) ->
    let bad =
      match range.Aggregate.fault with
      | Some dev -> aa_overlaps_fault range dev aa
      | None -> false
    in
    if bad then begin
      if qbudget = 0 then false
      else begin
        Hashtbl.replace cursor.quarantined aa ();
        Hashtbl.remove cursor.taken aa;
        Telemetry.incr "fault.aa_quarantined";
        refill_range_guarded t range cursor (qbudget - 1)
      end
    end
    else begin
      note_phys_take t score;
      t.candidates_scanned <-
        t.candidates_scanned + Topology.aa_capacity range.Aggregate.topology aa;
      let words0 = !(t.words) in
      Telemetry.span_enter Span.Harvest;
      let count = harvest_range t range aa ~cursor in
      Telemetry.span_exit Span.Harvest;
      cursor.head <- 0;
      cursor.len <- count;
      cursor.ring_aa <- aa;
      cursor.ring_epoch <- t.epoch;
      note_harvest t ~words0 ~count;
      count > 0 || refill_range_guarded t range cursor qbudget
    end

let refill_range t range cursor =
  match range.Aggregate.fault with
  | Some dev when not (Wafl_fault.Fault.online dev) -> false
  | _ -> refill_range_guarded t range cursor 64

(* The ring-pop loop, top-level so the steady-state path allocates no
   closure.  Pops need no [is_allocated] recheck (see [revalidate]). *)
let rec take_loop t range cursor dst pos want =
  if want = 0 then pos
  else if cursor.head < cursor.len then begin
    let pvbn = cursor.ring.(cursor.head) in
    cursor.head <- cursor.head + 1;
    Aggregate.allocate_harvested t.aggregate range ~aa:cursor.ring_aa ~pvbn;
    dst.(pos) <- pvbn;
    take_loop t range cursor dst (pos + 1) (want - 1)
  end
  else if refill_range t range cursor then take_loop t range cursor dst pos want
  else pos

(* Take up to [want] allocatable PVBNs from one range into [dst] at [pos];
   returns the new fill position.  Allocation-free while the ring lasts. *)
let take_from_range_into t range cursor ~dst ~pos want =
  revalidate t cursor (Aggregate.metafile t.aggregate);
  take_loop t range cursor dst pos want

let rec array_max a i best =
  if i >= Array.length a then best else array_max a (i + 1) (if a.(i) > best then a.(i) else best)

let best_score_of_range (range : Aggregate.range) =
  match range.Aggregate.fault with
  | Some dev when not (Wafl_fault.Fault.online dev) ->
    (* an offline device offers nothing, whatever its cache says *)
    0
  | _ -> (
    match range.Aggregate.cache with
    | Some c -> Cache.best_score c
    | None ->
      (* cacheless: use the true best score so throttling still works *)
      array_max range.Aggregate.scores 0 0)

(* The fan-out stages of [allocate_pvbns_into], top-level (closure-free):
   the whole call must allocate nothing when served from rings. *)

let rec filter_elig t ranges min_score i m =
  if i >= Array.length ranges then m
  else if best_score_of_range ranges.(i) >= min_score then begin
    t.elig.(m) <- i;
    filter_elig t ranges min_score (i + 1) (m + 1)
  end
  else filter_elig t ranges min_score (i + 1) m

(* Weight each range by its best AA score: emptier groups get a larger
   share of the CP's blocks (§4.2).  Weights are computed once per call —
   not re-derived every mop-up round. *)
let rec weigh_elig t ranges m k total =
  if k >= m then total
  else begin
    let w = max 1 (best_score_of_range ranges.(t.elig.(k))) in
    t.weight.(k) <- w;
    weigh_elig t ranges m (k + 1) (total + w)
  end

let rec take_shares t ranges dst n m total_weight k got =
  if k >= m then got
  else begin
    let share = n * t.weight.(k) / total_weight in
    let got =
      if share > 0 then begin
        let i = t.elig.(k) in
        take_from_range_into t ranges.(i) t.cursors.(i) ~dst ~pos:got share
      end
      else got
    in
    take_shares t ranges dst n m total_weight (k + 1) got
  end

(* Rounding remainder and any shortfall: round-robin over eligible ranges
   until satisfied or nothing more is allocatable.  Progress is the fill
   position itself — no per-round list lengths. *)
let rec mop_round t ranges dst n m k got =
  if k >= m || got >= n then got
  else begin
    let i = t.elig.(k) in
    mop_round t ranges dst n m (k + 1)
      (take_from_range_into t ranges.(i) t.cursors.(i) ~dst ~pos:got (min 64 (n - got)))
  end

let rec mop_up t ranges dst n m got =
  if got >= n then got
  else begin
    let got' = mop_round t ranges dst n m 0 got in
    if got' > got then mop_up t ranges dst n m got' else got'
  end

let allocate_pvbns_into t ~dst n =
  if n <= 0 then 0
  else begin
    let ranges = Aggregate.ranges t.aggregate in
    let nr = Array.length ranges in
    let threshold = (Aggregate.config t.aggregate).Config.rg_score_threshold in
    (* Eligible ranges into the preallocated [elig] scratch. *)
    let m =
      match threshold with
      | None ->
        for i = 0 to nr - 1 do
          t.elig.(i) <- i
        done;
        nr
      | Some min_score ->
        let m = filter_elig t ranges min_score 0 0 in
        if m > 0 then m
        else begin
          (* never stall entirely: fall back to every range (§3.3.1) *)
          for i = 0 to nr - 1 do
            t.elig.(i) <- i
          done;
          nr
        end
    in
    let total_weight = weigh_elig t ranges m 0 0 in
    let after_shares = take_shares t ranges dst n m total_weight 0 0 in
    mop_up t ranges dst n m after_shares
  end

let rec refill_vol t vol cursor =
  Rebuild.touch_vol vol;
  let policy = (Flexvol.spec vol).Config.policy in
  Telemetry.span_enter Span.Pick;
  let picked =
    pick_aa t cursor ~policy ~space:(-1) ~cache:(Flexvol.cache vol)
      ~n_aas:(Topology.aa_count (Flexvol.topology vol))
      ~free_of:(fun aa -> Score.score_of_aa (Flexvol.topology vol) (Flexvol.metafile vol) aa)
  in
  Telemetry.span_exit Span.Pick;
  match picked with
  | None -> false
  | Some (aa, score) ->
    note_virt_take t score;
    t.candidates_scanned <-
      t.candidates_scanned + Topology.aa_capacity (Flexvol.topology vol) aa;
    let words0 = !(t.words) in
    Telemetry.span_enter Span.Harvest;
    let count = Flexvol.harvest_free_of_aa vol aa ~dst:cursor.ring ~words:t.words in
    Telemetry.span_exit Span.Harvest;
    cursor.head <- 0;
    cursor.len <- count;
    cursor.ring_aa <- aa;
    cursor.ring_epoch <- t.epoch;
    note_harvest t ~words0 ~count;
    count > 0 || refill_vol t vol cursor

let rec vvbn_loop t vol cursor dst n pos =
  if pos >= n then pos
  else if cursor.head < cursor.len then begin
    let vvbn = cursor.ring.(cursor.head) in
    cursor.head <- cursor.head + 1;
    (* reserve immediately so a re-gathered AA cannot offer it again *)
    Flexvol.reserve_harvested vol ~aa:cursor.ring_aa ~vvbn;
    dst.(pos) <- vvbn;
    vvbn_loop t vol cursor dst n (pos + 1)
  end
  else if refill_vol t vol cursor then vvbn_loop t vol cursor dst n pos
  else pos

let allocate_vvbns_into t vol ~dst n =
  if n <= 0 then 0
  else begin
    let cursor = vol_cursor t vol in
    revalidate t cursor (Flexvol.metafile vol);
    vvbn_loop t vol cursor dst n 0
  end

(* CP boundary: apply score deltas and make sure every taken AA is re-filed
   in its cache, even if its score did not change.  [Score.mem] answers
   "will apply emit this AA?" directly from the delta's preallocated
   accumulator, so no per-CP hash table or list concatenation is needed. *)
let cp_finish_space ~delta ~(scores : int array) ~cache cursor =
  let extra =
    Hashtbl.fold
      (fun aa () acc -> if Score.mem delta ~aa then acc else (aa, scores.(aa)) :: acc)
      cursor.taken []
  in
  Hashtbl.reset cursor.taken;
  let updates = Score.apply delta scores in
  match cache with
  | Some cache ->
    let updates =
      (* quarantined AAs sit on bad device ranges: never re-file them, or
         the cache would hand them right back.  Empty quarantine (the
         fault-free common case) skips the filter allocation. *)
      if Hashtbl.length cursor.quarantined = 0 then List.rev_append extra updates
      else
        List.filter
          (fun (aa, _) -> not (Hashtbl.mem cursor.quarantined aa))
          (List.rev_append extra updates)
    in
    Cache.cp_update cache updates
  | None -> ()

let cp_finish t =
  t.epoch <- t.epoch + 1;
  Array.iteri
    (fun i (range : Aggregate.range) ->
      cp_finish_space ~delta:range.Aggregate.delta ~scores:range.Aggregate.scores
        ~cache:range.Aggregate.cache t.cursors.(i))
    (Aggregate.ranges t.aggregate);
  List.iter
    (fun (vol, cursor) ->
      cp_finish_space ~delta:(Flexvol.delta vol) ~scores:(Flexvol.scores vol)
        ~cache:(Flexvol.cache vol) cursor)
    t.vols

let candidates_scanned t = t.candidates_scanned
let words_scanned t = !(t.words)
let vbns_harvested t = t.harvested

let aas_taken t = t.phys_taken + t.virt_taken
let score_sum_taken t = t.phys_score_sum + t.virt_score_sum
let phys_take_trace t = (t.phys_taken, t.phys_score_sum)
let virt_take_trace t = (t.virt_taken, t.virt_score_sum)

let reset_take_stats t =
  t.phys_taken <- 0;
  t.phys_score_sum <- 0;
  t.virt_taken <- 0;
  t.virt_score_sum <- 0;
  t.candidates_scanned <- 0;
  t.words := 0;
  t.harvested <- 0
