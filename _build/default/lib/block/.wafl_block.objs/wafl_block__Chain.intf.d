lib/block/chain.mli: Extent Format
