(** Allocation-area sizing policies (§3.2).

    Smaller AAs differentiate free-space quality at finer grain; larger AAs
    cost less memory and, critically, can be matched to media write units:
    erase blocks on SSDs, shingle zones and AZCS checksum regions on SMR
    drives (Figure 4). *)

type media = Hdd | Ssd of Wafl_device.Profile.ssd | Smr of Wafl_device.Profile.smr

val default_hdd_stripes : int
(** 4k stripes — the historical default for HDD RAID groups (§3.2.1). *)

val default_raid_agnostic_blocks : int
(** 32k VBNs, matching one bitmap-metafile block (§3.2.1). *)

val ssd_stripes : ?erase_blocks_per_aa:int -> Wafl_device.Profile.ssd -> int
(** AA size (in stripes) for an SSD RAID group: the per-device span covers
    [erase_blocks_per_aa] (default 4) whole erase blocks, so writing out an
    AA overwrites erase blocks end to end and minimizes FTL relocation
    (§3.2.2, Figure 4 (B)). *)

val smr_stripes :
  ?zones_per_aa:int -> azcs:bool -> Wafl_device.Profile.smr -> int
(** AA size (in stripes) for an SMR RAID group: per-device span covers
    [zones_per_aa] (default 2) shingle zones; with [azcs:true] the size is
    additionally rounded up to a multiple of the AZCS {e data-block} count
    (63) so every AA covers whole checksum regions and checksum blocks are
    always written in sequence (§3.2.3-3.2.4, Figure 4 (C)). *)

val stripes_for : media -> int
(** Recommended AA stripes for a medium with default parameters (AZCS
    alignment on for SMR). *)

val is_erase_block_aligned : aa_stripes:int -> Wafl_device.Profile.ssd -> bool
(** Whether the per-device AA span is a whole multiple of the erase block. *)

val is_azcs_aligned : aa_stripes:int -> bool

val memory_bytes_for_heap : aa_count:int -> int
(** Memory footprint of tracking [aa_count] AAs in a RAID-aware max-heap
    cache at 8 bytes/entry — the §3.3.1 example (1M AAs ≈ 1MiB won't hold
    to the byte, but the linear scaling does). *)
