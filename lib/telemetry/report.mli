(** One-screen plain-text health view of a telemetry instance — the body
    of [waflsim top].

    {!health} is a pure renderer over the instance's span recorder, time
    series and registry: a span table (indented by {!Span.depth}, with the
    currently open phase flagged), the headline rates of the newest
    time-series row (picks/s, search ns/block, free fraction,
    fragmentation, HBPS error bound), a sparkline of the fragmentation
    trend across the retained rows, and — when the instance carries a
    {!Latency.t} with recorded ops — a request-latency pane: overall and
    per-volume p50/p99/p999, SLO burn rates (flagging breaches), and the
    slowest tail exemplars with their blame span stack.  It writes no ANSI
    escapes — the caller decides whether to clear the screen between
    refreshes — so tests can assert on its output directly. *)

val sparkline : ?width:int -> float array -> string
(** Render the series as one row of block glyphs, scaled to its own
    min/max ([width] defaults to 60; longer series are bucketed by
    averaging, non-finite values ignored).  Empty input yields [""]. *)

val health : ?width:int -> Telemetry.t -> string
(** The full screen, [width] columns wide (default 80, clamped to a
    sane minimum).  Sections with nothing to show (no spans entered, no
    rows sampled) collapse to a single placeholder line. *)
