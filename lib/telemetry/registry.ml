type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_observations : int;
  mutable h_sum : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  table : (string, metric) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
}

let n_buckets = 63

let create () = { table = Hashtbl.create 64; order = [] }

let register t name make =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add t.table name m;
    t.order <- name :: t.order;
    m

let counter t name =
  match register t name (fun () -> Counter { c_name = name; c_count = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Registry.counter: %S is not a counter" name)

let gauge t name =
  match register t name (fun () -> Gauge { g_name = name; g_value = 0.0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ ->
    invalid_arg (Printf.sprintf "Registry.gauge: %S is not a gauge" name)

let histogram t name =
  match
    register t name (fun () ->
        Histogram
          { h_name = name; buckets = Array.make n_buckets 0; h_observations = 0; h_sum = 0 })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ ->
    invalid_arg (Printf.sprintf "Registry.histogram: %S is not a histogram" name)

let incr c = c.c_count <- c.c_count + 1

let add c n =
  if n < 0 then invalid_arg "Registry.add: negative increment";
  c.c_count <- c.c_count + n

let count c = c.c_count

let set g v = g.g_value <- v
let set_max g v = if v > g.g_value then g.g_value <- v
let value g = g.g_value

(* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    min (n_buckets - 1) (go 0 v)
  end

let observe h v =
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_observations <- h.h_observations + 1;
  h.h_sum <- h.h_sum + max 0 v

let observations h = h.h_observations
let sum h = h.h_sum
let bucket_count h = Array.length h.buckets
let bucket h i = h.buckets.(i)
let bucket_lower_bound i = if i <= 1 then 0 else 1 lsl (i - 1)

let nonempty_buckets h =
  let acc = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (i, h.buckets.(i)) :: !acc
  done;
  !acc

let name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let fold t ~init ~f =
  List.fold_left (fun acc n -> f acc (Hashtbl.find t.table n)) init (List.rev t.order)

let find t name = Hashtbl.find_opt t.table name

let clear t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.c_count <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        h.h_observations <- 0;
        h.h_sum <- 0)
    t.table
