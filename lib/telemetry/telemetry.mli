(** Telemetry subsystem front-end: one {!Registry.t} of metrics, one
    {!Tracer.t} of structured events, one {!Span.t} phase-span recorder,
    one {!Timeseries.t} of per-CP rows, and a list of labelled snapshots
    (one per consistency point, produced by [Cp.run]).

    Instrumented code does not thread a handle around; it goes through the
    process-wide {e installed} instance.  When nothing is installed every
    helper below is a single match on a global ref — no allocation, no
    lookup — so an uninstrumented run pays (almost) nothing.  The trace
    emitters additionally check the tracer's enabled flag, so an installed
    instance with tracing off still allocates nothing on the pick path.

    Domain safety: counter, gauge and span updates are atomic, histogram
    observations shard per domain, and trace pushes are serialised, so
    the name-based helpers below may be called from parallel scan domains
    (see {!Wafl_par.Par}) without losing updates.  Snapshots and time
    series remain single-domain: they are emitted only from the serial
    sections of [Cp.run].

    Typical use:
    {[
      let tel = Telemetry.create ~tracing:true () in
      Telemetry.install tel;
      (* ... run workload ... *)
      Telemetry.uninstall ();
      print_string (Export.metrics_json tel)
    ]} *)

type value = Int of int | Float of float | String of string

type snapshot = {
  seq : int;  (** 1-based snapshot index, in emission order *)
  label : string;
  fields : (string * value) list;
}

type t

val create :
  ?trace_capacity:int -> ?series_capacity:int -> ?clock:(unit -> int) ->
  ?tracing:bool -> ?latency:Latency.t -> unit -> t
(** [trace_capacity] defaults to 4096 events, [series_capacity] to 4096
    time-series rows (both raise [Invalid_argument] when not positive);
    [tracing] (the tracer's enabled flag) to [false]; [clock] (the span
    recorder's nanosecond clock, injectable for tests) to the wall clock.
    Metrics, spans, series and snapshots are always on for an installed
    instance; event tracing and request-latency accounting ([latency],
    off by default) have separate switches. *)

val registry : t -> Registry.t
val tracer : t -> Tracer.t
val spans : t -> Span.t
val series : t -> Timeseries.t

val latency : t -> Latency.t option
(** The request-latency recorder, when this instance carries one. *)

val snapshots : t -> snapshot list
(** Oldest first. *)

val add_snapshot : t -> label:string -> (string * value) list -> unit
val reset : t -> unit

(* --- process-wide installation --- *)

val install : t -> unit
(** Replaces any previously installed instance. *)

val uninstall : unit -> unit
val installed : unit -> t option
val is_active : unit -> bool

val with_installed : t -> (unit -> 'a) -> 'a
(** Install, run, uninstall (also on exception). *)

(* --- helpers against the installed instance (no-ops when none) --- *)

val incr : string -> unit
val add : string -> int -> unit
val set_gauge : string -> float -> unit
val max_gauge : string -> float -> unit
val observe : string -> int -> unit

val record : label:string -> (unit -> (string * value) list) -> unit
(** Append a snapshot; the field thunk only runs when an instance is
    installed, so building the field list costs nothing otherwise. *)

(* --- phase spans (branch-only no-ops when uninstalled) --- *)

val span_enter : Span.kind -> unit
val span_exit : Span.kind -> unit
(** Open / close a phase span on the installed recorder.  Uninstalled,
    each is a single match on the global ref — zero allocation, so span
    instrumentation may sit on (the refill edges of) the allocation hot
    path without violating the consume-window guarantee. *)

val now_ns : unit -> int
(** The span clock, or 0 when uninstalled — for per-CP wall-time deltas
    without paying a clock read on uninstrumented runs. *)

val span_total_ns : Span.kind -> int
(** Accumulated ns of the kind on the installed recorder (0 when none). *)

(* --- time series --- *)

val sample : columns:(unit -> string list) -> (unit -> float array) -> unit
(** Append one row to the installed instance's time series: fixes the
    schema on first use ({!Timeseries.set_columns}), appends the row, then
    runs the {!on_sample} hook.  Both thunks only run when an instance is
    installed. *)

val on_sample : t -> (unit -> unit) option -> unit
(** Hook invoked after every {!sample} append — the live reporter's
    refresh trigger. *)

(* --- trace emitters (no-op unless installed AND tracing enabled) --- *)

val trace_cp_begin : unit -> unit
val trace_cp_end : ops:int -> blocks:int -> freed:int -> pages:int -> device_us:float -> unit
val trace_aa_pick : space:int -> aa:int -> score:int -> unit
val trace_cache_replenish : space:int -> listed:int -> unit

val trace_tetris_write :
  space:int -> tetrises:int -> full_stripes:int -> partial_stripes:int -> unit

val trace_cleaner_pass : aas:int -> relocated:int -> reclaimed:int -> unit
val trace_free_commit : space:int -> freed:int -> pages:int -> unit

val trace_fault_inject :
  space:int -> transients:int -> torn:int -> failed:int -> spikes:int -> unit

val trace_io_retry : space:int -> retries:int -> ok:int -> unit

(* --- request latency (no-ops unless the installed instance carries a
   {!Latency.t}) --- *)

val lat_active : unit -> bool
(** Whether latency accounting is live — instrumentation sites use this to
    skip their bookkeeping entirely.  Uninstalled (or installed without a
    latency recorder) this is a branch, no allocation. *)

val lat_vol_slot : uid:int -> name:string -> int
(** Dense per-run volume slot for latency keying ([-1] when inactive). *)

val lat_cp_record :
  groups:(int * int * int) list ->
  pages:int ->
  cache_work:int ->
  candidates:int ->
  device_us:float ->
  spike_us:float ->
  pick_ns:int ->
  harvest_ns:int ->
  unit
(** Feed one committed CP into {!Latency.cp_record}, then publish the SLO
    burn rates as gauges ([slo.NAME.burn_fast]/[.burn_slow]), violation
    counts as counters ([slo.NAME.violations]), and — on a breach — bump
    [slo.NAME.breaches] and emit a [Slo_violation] trace event. *)

val lat_quantiles_ms : vol:int -> float * float * float
(** [(p50, p99, p999)] ms from the installed latency recorder; [vol >= 0]
    filters to that volume slot, [-1] gives the overall view.  Zeros when
    inactive — the fixed time-series schema keeps its latency columns
    either way. *)
