(* Smoke/integration tests for Wafl_experiments: the fast experiments are
   run end-to-end at quick scale and their headline orderings asserted. *)

open Wafl_experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Common --- *)

let test_scale_parse () =
  check_bool "quick" true (Common.scale_of_string "quick" = Some Common.Quick);
  check_bool "FULL" true (Common.scale_of_string "FULL" = Some Common.Full);
  check_bool "garbage" true (Common.scale_of_string "medium" = None)

let test_pct () =
  Alcotest.(check string) "up" "+10.0%" (Common.pct 110.0 100.0);
  Alcotest.(check string) "down" "-25.0%" (Common.pct 75.0 100.0);
  Alcotest.(check string) "zero base" "n/a" (Common.pct 1.0 0.0)

let test_rig_builders () =
  let ssd = Common.ssd_raid_group Common.Quick ~aa_stripes:None in
  check_int "ssd devices" 4 ssd.Wafl_core.Config.data_devices;
  let hdd = Common.hdd_raid_group Common.Quick in
  check_bool "hdd media" true
    (match hdd.Wafl_core.Config.media with Wafl_core.Config.Hdd _ -> true | _ -> false);
  let smr = Common.smr_raid_group Common.Quick ~aa_stripes:(Some 63) in
  check_bool "smr media" true
    (match smr.Wafl_core.Config.media with Wafl_core.Config.Smr _ -> true | _ -> false)

(* --- Figure 7 end-to-end (fast) --- *)

let test_fig7_shape () =
  let result = Fig7.run ~scale:Common.Quick () in
  check_int "four groups" 4 (List.length result.Fig7.groups);
  let aged = List.filter (fun g -> g.Fig7.aged) result.Fig7.groups in
  let fresh = List.filter (fun g -> not g.Fig7.aged) result.Fig7.groups in
  let mean f gs = List.fold_left (fun a g -> a +. f g) 0.0 gs /. float_of_int (List.length gs) in
  check_bool "fresh groups receive more blocks" true
    (mean (fun g -> g.Fig7.blocks_per_s) fresh > mean (fun g -> g.Fig7.blocks_per_s) aged);
  check_bool "aged tetrises less efficient" true
    (mean (fun g -> g.Fig7.blocks_per_tetris) aged
    < mean (fun g -> g.Fig7.blocks_per_tetris) fresh);
  (* disks balanced within groups *)
  List.iter
    (fun g ->
      let disks = g.Fig7.per_disk_blocks in
      let mx = Array.fold_left Float.max 0.0 disks in
      let mn = Array.fold_left Float.min infinity disks in
      check_bool "balanced" true (mx -. mn < 0.25 *. mx))
    result.Fig7.groups

(* --- Figure 9 end-to-end (fast) --- *)

let test_fig9_alignment () =
  let results = Fig9.run ~scale:Common.Quick () in
  let hdd = List.find (fun r -> r.Fig9.sizing = Fig9.Hdd_aa) results in
  let azcs = List.find (fun r -> r.Fig9.sizing = Fig9.Azcs_aligned_aa) results in
  check_bool "hdd AA unaligned" false hdd.Fig9.azcs_aligned;
  check_bool "aligned AA aligned" true azcs.Fig9.azcs_aligned;
  check_bool "aligned has fewer random checksum writes" true
    (azcs.Fig9.random_checksum_writes < hdd.Fig9.random_checksum_writes);
  check_bool "aligned has higher drive throughput" true
    (azcs.Fig9.drive_throughput_blocks_per_s > hdd.Fig9.drive_throughput_blocks_per_s)

(* --- Figure 10 end-to-end (fast) --- *)

let test_fig10_scaling () =
  let result = Fig10.run ~scale:Common.Quick () in
  (* TopAA flat in size; scan grows *)
  let first = List.hd result.Fig10.sweep_a in
  let last = List.nth result.Fig10.sweep_a (List.length result.Fig10.sweep_a - 1) in
  check_bool "scan grows" true (last.Fig10.without_topaa_us > 2.0 *. first.Fig10.without_topaa_us);
  check_bool "topaa flat" true (last.Fig10.with_topaa_us < 1.5 *. first.Fig10.with_topaa_us);
  List.iter
    (fun p -> check_bool "topaa faster everywhere" true (p.Fig10.with_topaa_us < p.Fig10.without_topaa_us))
    (result.Fig10.sweep_a @ result.Fig10.sweep_b)

(* --- Ablation: bin width error bound --- *)

let test_ablation_bin_width_bound () =
  let result = Ablation.run ~scale:Common.Quick () in
  List.iter
    (fun p ->
      check_bool
        (Printf.sprintf "width %d bounded" p.Ablation.bin_width)
        true
        (p.Ablation.worst_observed_error <= p.Ablation.guaranteed_error +. 1e-9))
    result.Ablation.bin_widths;
  (* error grows with bin width *)
  let widths = List.map (fun p -> p.Ablation.guaranteed_error) result.Ablation.bin_widths in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a <= b && ascending rest
    | _ -> true
  in
  check_bool "guaranteed error monotone in width" true (ascending widths);
  (* cleaner: emptiest-first relocates less per AA *)
  match result.Ablation.cleaner with
  | [ emptiest; fullest ] ->
    check_bool "cleaner ROI" true
      (emptiest.Ablation.relocations_per_aa < fullest.Ablation.relocations_per_aa)
  | _ -> Alcotest.fail "two cleaner strategies expected"

let () =
  Alcotest.run "wafl_experiments"
    [
      ( "common",
        [
          Alcotest.test_case "scale parse" `Quick test_scale_parse;
          Alcotest.test_case "pct" `Quick test_pct;
          Alcotest.test_case "rig builders" `Quick test_rig_builders;
        ] );
      ("fig7", [ Alcotest.test_case "shape" `Slow test_fig7_shape ]);
      ("fig9", [ Alcotest.test_case "alignment" `Slow test_fig9_alignment ]);
      ("fig10", [ Alcotest.test_case "scaling" `Slow test_fig10_scaling ]);
      ("ablation", [ Alcotest.test_case "bin width bound" `Slow test_ablation_bin_width_bound ]);
    ]
