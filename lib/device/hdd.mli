(** Hard-drive cost model.

    A device write I/O costs one positioning (seek + rotational latency)
    plus streaming transfer for every block in the chain, so long write
    chains amortize the seek (§2.4).  Random 4KiB reads each pay a full
    positioning. *)

val write_cost_us : Profile.hdd -> chains:int -> blocks:int -> float
(** Cost of writing [blocks] blocks grouped into [chains] contiguous
    device I/Os. *)

val random_read_cost_us : Profile.hdd -> ios:int -> float
(** Cost of [ios] independent 4KiB reads. *)

val faulty_write_cost_us :
  Wafl_fault.Fault.device option ->
  Profile.hdd ->
  chains:int ->
  locals:int list ->
  parity_writes:int ->
  float
(** {!write_cost_us} with a fault plane consulted per data block in
    [locals] (range-local block numbers): failed blocks transfer nothing.
    With [None] it is exactly [write_cost_us ~blocks:(len locals + parity_writes)]. *)

val sequential_read_cost_us : Profile.hdd -> chains:int -> blocks:int -> float
(** Same shape as writes: one seek per chain plus streaming. *)

val streaming_bandwidth_blocks_per_s : Profile.hdd -> float
(** Upper bound: blocks per second with no seeks. *)
