(** Mount path: AA-cache (re)construction after a reboot or failover (§3.4).

    Client access resumes only after the first CP can run, and the first CP
    needs operational AA caches.  Without TopAA metafiles that means a
    linear walk of every bitmap-metafile page to recompute every AA score —
    time linear in file-system size.  With TopAA metafiles it means reading
    one 4KiB block per RAID-aware cache (the top ~500 AAs) and two blocks
    per RAID-agnostic cache (the embedded HBPS pages) — constant time —
    while the full rebuild proceeds in the background. *)

type image
(** A crash-consistent snapshot: configuration, allocation bitmaps, and the
    persisted TopAA blocks. *)

type verify_report = {
  pages_verified : int;  (** integrity pages checked against sidecars *)
  torn_pages : int;      (** CRC matched neither generation (bit-rot) *)
  stale_pages : int;     (** matched the previous generation (lost write) *)
  ahead_pages : int;     (** sealed past the superblock; accepted *)
  unverified_stores : int;  (** tracked stores with no valid sidecar *)
  ranges_quarantined : int;  (** aggregate ranges routed to {!Rebuild} *)
  vols_quarantined : int;
}

type timing = {
  topaa_blocks_read : int;
  metafile_pages_scanned : int;
  aas_scored : int;            (** AA scores recomputed before first CP *)
  ops_replayed : int;          (** NVRAM-logged operations re-staged *)
  ready_us : float;            (** modeled time until the first CP may run *)
  verify : verify_report option;  (** set when mounted with [~verify:true] *)
}

type cost_model = {
  page_read_us : float;   (** read one 4KiB metafile/TopAA block *)
  page_scan_cpu_us : float;  (** popcount one bitmap page into AA scores *)
  seed_insert_us : float; (** file one seeded AA into a cache *)
  replay_op_us : float;   (** re-stage one NVRAM-logged operation *)
}

val default_cost_model : cost_model

val snapshot : Fs.t -> image
(** Capture bitmaps and TopAA blocks, as the last completed CP would have
    persisted them, plus the NVRAM log of operations staged since —
    {!mount} replays those so no acknowledged operation is lost. *)

val corrupt_range_topaa : image -> int -> unit
(** Fault injection: flip bytes in the TopAA block of physical range [i].
    A subsequent {!mount} detects the damage via the block checksum and
    falls back to scanning that range's bitmap (charged to [ready_us]).
    Raises [Invalid_argument] if [i] is not a valid range index. *)

val corrupt_vol_topaa : image -> int -> unit
(** Same, for the HBPS pages of volume [i].
    Raises [Invalid_argument] if [i] is not a valid volume index. *)

val tear_agg_bitmap_page : image -> page:int -> unit
(** Fault injection: model a torn write to aggregate bitmap-metafile page
    [page] — its second half reads back as zeros ("free").  {!Iron.check}
    on the mounted system reports the inconsistencies; {!Iron.repair} with
    [Container_authority] re-marks the referenced blocks.  Raises
    [Invalid_argument] if [page] is out of range. *)

val verify_pagestores : ?pool:Wafl_par.Par.t -> Fs.t -> verify_report
(** Check every integrity-tracked pagestore of a {e live} system against
    its persisted sidecars ({!Wafl_bitmap.Integrity}): classify each 4 KiB
    page intact / ahead / torn / stale, quarantine the aggregate ranges
    and volumes the bad pages overlap (damage-proportional
    {!Rebuild.request}), and re-stamp the damaged pages as the new bitmap
    truth — the caller then runs {!Iron.repair} under container authority
    to settle bitmap-vs-container disagreements.  This is the
    cross-process remount check: call it right after [Fs.create] under the
    same mmap directory a previous process persisted.  No-op report when
    no mmap directory is installed.  Emits the [mount.verify_*]
    telemetry. *)

val mount :
  ?cost:cost_model ->
  ?background_rebuild:bool ->
  ?lazy_rebuild:bool ->
  ?verify:bool ->
  ?pool:Wafl_par.Par.t ->
  image ->
  with_topaa:bool ->
  Fs.t * timing
(** Bring the snapshot back as a fresh system (the file namespace itself is
    not part of the image; only the space state matters for allocator
    readiness).  [with_topaa:true] seeds caches from the persisted blocks;
    [false] pays the full scan.

    [background_rebuild] selects what happens after TopAA seeding:
    - [true] (the default): the mount additionally runs the full
      cache rebuild — exact scores for every AA — off the timed path,
      the way the production system finishes its background scanner
      dozens of seconds after mount.  By the time [mount] returns, a
      TopAA mount allocates identically to a full-scan mount.
    - [false]: the system runs on the seeded caches alone (top ~500
      AAs per range) until something else rebuilds them — the state the
      paper measures immediately after failover.  Use this to observe
      seeded-cache behaviour, or to keep mount itself cheap in tests.

    [background_rebuild] only affects [with_topaa:true] mounts; the
    full-scan path always rebuilds exactly.

    [lazy_rebuild] (default [false]) makes the mount {e incremental}:
    every range and volume is stamped stale up front, and each one
    materializes its exact scores and cache on first touch — the
    allocator's AA pick or harvest, the Iron scan, or a cleaner pass —
    paying the metafile page reads for just that range, right then
    (counted by the [rebuild.lazy_ranges] / [rebuild.lazy_vols]
    telemetry).  With [with_topaa:true] the constant-cost seeding still
    runs (so picks before the first touch follow the persisted top AAs)
    but the eager background rebuild is skipped; with [with_topaa:false]
    nothing is scanned at all and [ready_us] is the NVRAM replay alone —
    independent of aggregate size.  Once every range has been touched,
    the system's state is bit-identical to an eager mount's at any
    domain count, because both funnel through {!Rebuild.request}.

    Every mount increments exactly one of the [mount.topaa_mounts] /
    [mount.full_scan_mounts] / [mount.deferred_scan_mounts] telemetry
    counters, so which path a workload took is observable (lazy mounts
    additionally increment [mount.lazy_mounts]); TopAA mounts also emit
    [mount.topaa_blocks_read], [mount.topaa_seeds] and
    [mount.fallback_pages_scanned], full-scan mounts [mount.scan_pages]
    and [mount.aas_scored].

    [verify] (default [false]) runs the {!verify_pagestores}
    classification against the {e persisted} mapped bytes before the
    image is restored over them: damage found on disk is reported in
    [timing.verify], and the ranges/volumes it overlapped are rescanned
    after the restore heals the data.  Meaningless (empty report) without
    an installed mmap directory.

    [pool] (defaulting to the installed one) parallelises the full-scan
    rescoring — and the background rebuild — across its domains with
    bit-identical resulting cache state; the modeled [ready_us] of a
    full-scan mount divides its linear page-scan term by the domain
    count, since each domain reads and scores a disjoint slice of the
    AA ranges. *)
