lib/util/rng.mli:
