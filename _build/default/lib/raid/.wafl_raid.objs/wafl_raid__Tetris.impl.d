lib/raid/tetris.ml: Array Format Geometry Hashtbl Int List Units Wafl_block
