lib/core/fs.ml: Aggregate Array Config Cp Flexvol Hashtbl List Metafile Rng String Wafl_bitmap Wafl_block Wafl_util Write_alloc
