open Wafl_telemetry

type backend = Raid_aware of Max_heap.t | Raid_agnostic of Hbps.t

type stats = {
  picks : int;
  updates : int;
  replenishes : int;
  work : int;
  entries : int;
  score_error_last : float;
  score_error_max : float;
}

type t = {
  backend : backend;
  space : int;
  mutable picks : int;
  mutable updates : int;
  mutable replenishes : int;
  mutable work : int;
  mutable score_error_last : float;
  mutable score_error_max : float;
}

let make ?(space = -1) backend =
  {
    backend;
    space;
    picks = 0;
    updates = 0;
    replenishes = 0;
    work = 0;
    score_error_last = 0.0;
    score_error_max = 0.0;
  }

let backend t = t.backend
let space t = t.space

let raid_aware ?space ~scores () = make ?space (Raid_aware (Max_heap.of_scores scores))

let raid_agnostic ?space ?bin_width ?capacity ~max_score ~scores () =
  make ?space (Raid_agnostic (Hbps.create ?bin_width ?capacity ~max_score ~scores ()))

(* Abstract work estimates: a heap op costs ~log2(size) comparisons, an
   HBPS op a constant handful of bin moves. *)
let heap_op_work heap = max 1 (int_of_float (Float.log2 (float_of_int (max 2 (Max_heap.size heap)))))
let hbps_op_work = 4

(* Upper bound on how far the picked score sits below the best populated
   histogram bin's range.  With the list in sync (§3.3) the pick comes from
   that very bin, so the bound stays below bin_width/max_score = 3.125%. *)
let note_hbps_pick_error t h score =
  match Hbps.highest_populated_bin h with
  | None -> ()
  | Some hp ->
    let bin_top = min (Hbps.max_score h) (((hp + 1) * Hbps.bin_width h) - 1) in
    let err = float_of_int (max 0 (bin_top - score)) /. float_of_int (Hbps.max_score h) in
    t.score_error_last <- err;
    if err > t.score_error_max then t.score_error_max <- err

let take_best t =
  t.picks <- t.picks + 1;
  match t.backend with
  | Raid_aware h ->
    t.work <- t.work + heap_op_work h;
    let best = Max_heap.extract_best h in
    (match best with
    | Some (aa, score) -> Telemetry.trace_aa_pick ~space:t.space ~aa ~score
    | None -> ());
    best
  | Raid_agnostic h ->
    t.work <- t.work + hbps_op_work;
    let best = Hbps.take_best h in
    (match best with
    | Some (aa, score) ->
      note_hbps_pick_error t h score;
      Telemetry.trace_aa_pick ~space:t.space ~aa ~score
    | None -> ());
    best

(* Claim-aware take: same accounting as {!take_best}, dispatching to the
   backend's filtered extraction so AAs owned by another writer are
   skipped without losing score order. *)
let take_best_filtered t ~keep =
  t.picks <- t.picks + 1;
  match t.backend with
  | Raid_aware h ->
    t.work <- t.work + heap_op_work h;
    let best = Max_heap.extract_best_filtered h ~keep in
    (match best with
    | Some (aa, score) -> Telemetry.trace_aa_pick ~space:t.space ~aa ~score
    | None -> ());
    best
  | Raid_agnostic h ->
    t.work <- t.work + hbps_op_work;
    let best = Hbps.take_best_filtered h ~keep in
    (match best with
    | Some (aa, score) ->
      note_hbps_pick_error t h score;
      Telemetry.trace_aa_pick ~space:t.space ~aa ~score
    | None -> ());
    best

let peek_best_score t =
  match t.backend with
  | Raid_aware h -> Max_heap.best_score h
  | Raid_agnostic h -> Option.map snd (Hbps.pick_best h)

let best_score t =
  match t.backend with
  | Raid_aware h -> Max_heap.top_score h
  | Raid_agnostic h -> Hbps.top_score h

let cp_update t updates =
  t.updates <- t.updates + List.length updates;
  match t.backend with
  | Raid_aware h ->
    t.work <- t.work + (List.length updates * heap_op_work h);
    Max_heap.apply_updates h updates
  | Raid_agnostic h ->
    t.work <- t.work + (List.length updates * hbps_op_work);
    Hbps.apply_updates h updates;
    if Hbps.needs_replenish h then begin
      t.replenishes <- t.replenishes + 1;
      t.work <- t.work + Hbps.n_aas h;
      Hbps.replenish h;
      Telemetry.trace_cache_replenish ~space:t.space ~listed:(Hbps.count h)
    end

let stats t =
  {
    picks = t.picks;
    updates = t.updates;
    replenishes = t.replenishes;
    work = t.work;
    entries = (match t.backend with Raid_aware h -> Max_heap.size h | Raid_agnostic h -> Hbps.count h);
    score_error_last = t.score_error_last;
    score_error_max = t.score_error_max;
  }

let reset_stats t =
  t.picks <- 0;
  t.updates <- 0;
  t.replenishes <- 0;
  t.work <- 0;
  t.score_error_last <- 0.0;
  t.score_error_max <- 0.0

