open Wafl_util
open Wafl_block
open Wafl_device

type media = Hdd | Ssd of Profile.ssd | Smr of Profile.smr

let default_hdd_stripes = Units.default_hdd_aa_stripes
let default_raid_agnostic_blocks = Units.default_raid_agnostic_aa_blocks

let ssd_stripes ?(erase_blocks_per_aa = 4) (p : Profile.ssd) =
  assert (erase_blocks_per_aa > 0);
  erase_blocks_per_aa * p.Profile.erase_block_blocks

let smr_stripes ?(zones_per_aa = 2) ~azcs (p : Profile.smr) =
  assert (zones_per_aa > 0);
  let stripes = zones_per_aa * p.Profile.zone_blocks in
  (* AA stripes count data VBNs; a checksum block is interleaved on the
     device after every 63, so AZCS alignment means a multiple of 63. *)
  if azcs then Bitops.round_up stripes Units.azcs_data_blocks else stripes

let stripes_for = function
  | Hdd -> default_hdd_stripes
  | Ssd p -> ssd_stripes p
  | Smr p -> smr_stripes ~azcs:true p

let is_erase_block_aligned ~aa_stripes (p : Profile.ssd) =
  aa_stripes mod p.Profile.erase_block_blocks = 0

let is_azcs_aligned ~aa_stripes = aa_stripes mod Units.azcs_data_blocks = 0

let memory_bytes_for_heap ~aa_count = 8 * aa_count
