module Par = Wafl_par.Par

type t = {
  metafile : Metafile.t;
  pending : Bitmap.t;      (* dedupe guard for queued frees *)
  mutable queue : int list; (* reversed order of queue_free calls *)
  mutable n_pending : int;
}

type commit_result = { freed : int list; pages_written : int }

let create ?page_bits ~blocks () =
  let metafile = Metafile.create ?page_bits ~blocks () in
  (* The pending mask mirrors the in-memory queue, so it is transient by
     definition: zero it explicitly, since in a re-entered mmap directory
     its backing file may still hold a previous process's bits. *)
  let pending = Bitmap.create ~bits:blocks in
  Bitmap.clear_range pending ~start:0 ~len:blocks;
  { metafile; pending; queue = []; n_pending = 0 }

let metafile t = t.metafile
let blocks t = Metafile.blocks t.metafile
let is_allocated t vbn = Metafile.is_allocated t.metafile vbn

let allocate t vbn =
  if Bitmap.get t.pending vbn then
    invalid_arg "Activemap.allocate: VBN has a pending free";
  Metafile.allocate t.metafile vbn

(* Trusted hot-path variant: a free VBN cannot have a pending free
   (queue_free only accepts allocated VBNs), so when the caller
   guarantees the VBN is free — harvest rings do — both checks above are
   redundant. *)
let[@inline] allocate_harvested t vbn = Metafile.allocate_harvested t.metafile vbn

(* {!allocate_harvested} recording the dirtied page in the caller's
   [touched] set instead of the shared dirty state — see
   {!Metafile.allocate_harvested_touched}. *)
let[@inline] allocate_harvested_touched t vbn ~touched =
  Metafile.allocate_harvested_touched t.metafile vbn ~touched

let queue_free t vbn =
  if not (Metafile.is_allocated t.metafile vbn) then
    invalid_arg "Activemap.queue_free: VBN not allocated";
  if Bitmap.get t.pending vbn then
    invalid_arg "Activemap.queue_free: VBN already queued";
  Bitmap.set t.pending vbn;
  t.queue <- vbn :: t.queue;
  t.n_pending <- t.n_pending + 1

let pending_free_count t = t.n_pending
let has_pending_free t vbn = Bitmap.get t.pending vbn

(* Below this many queued frees the bucketing pass costs more than the
   bit clears it spreads out. *)
let par_min_frees = 512

(* Parallel delayed-free apply.  The freed VBNs are bucketed by
   page-aligned chunks of the *block space* (not by queue position):
   bitmap mutation is a byte-granular read-modify-write, so two domains
   may never clear bits in the same byte.  Page-aligned chunk bounds
   (with page_bits a multiple of 8) give every chunk exclusive ownership
   of its map bytes, its pending-bitmap bytes and its dirty pages; the
   per-chunk touched-page sets are merged serially in ascending page
   order afterwards.  Bit-for-bit the map, the pending bitmap and the
   dirty set end up identical to the serial loop. *)
let commit_parallel t pool freed =
  let mf = t.metafile in
  let page_bits = Metafile.page_bits mf in
  let bounds =
    Par.chunk_bounds ~total:(Metafile.blocks mf) ~align:page_bits ~chunks:(Par.jobs pool)
  in
  let nchunks = Array.length bounds in
  if nchunks <= 1 then None
  else begin
    let chunk_of vbn =
      let lo = ref 0 and hi = ref (nchunks - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        let s, _ = bounds.(mid) in
        if vbn >= s then lo := mid else hi := mid - 1
      done;
      !lo
    in
    let counts = Array.make nchunks 0 in
    List.iter (fun vbn -> counts.(chunk_of vbn) <- counts.(chunk_of vbn) + 1) freed;
    let starts = Array.make nchunks 0 in
    for c = 1 to nchunks - 1 do
      starts.(c) <- starts.(c - 1) + counts.(c - 1)
    done;
    let vbns = Array.make t.n_pending 0 in
    let fill = Array.copy starts in
    List.iter
      (fun vbn ->
        let c = chunk_of vbn in
        vbns.(fill.(c)) <- vbn;
        fill.(c) <- fill.(c) + 1)
      freed;
    let touched = Bytes.make (Metafile.pages mf) '\000' in
    Par.run pool ~chunks:nchunks ~f:(fun c ->
        Metafile.free_batch_into mf ~vbns ~pos:starts.(c) ~len:counts.(c) ~touched;
        for i = starts.(c) to starts.(c) + counts.(c) - 1 do
          Bitmap.clear t.pending vbns.(i)
        done);
    Metafile.mark_touched_dirty mf ~touched;
    Some ()
  end

let commit ?pool t =
  let freed = List.rev t.queue in
  Wafl_telemetry.Telemetry.span_enter Wafl_telemetry.Span.Bit_clear;
  let parallel =
    match Par.resolve pool with
    | Some p
      when Par.jobs p > 1 && t.n_pending >= par_min_frees
           && Metafile.page_bits t.metafile mod 8 = 0 ->
      commit_parallel t p freed
    | _ -> None
  in
  (match parallel with
  | Some () -> ()
  | None ->
    List.iter
      (fun vbn ->
        Metafile.free t.metafile vbn;
        Bitmap.clear t.pending vbn)
      freed);
  Wafl_telemetry.Telemetry.span_exit Wafl_telemetry.Span.Bit_clear;
  t.queue <- [];
  t.n_pending <- 0;
  let pages_written = Metafile.flush t.metafile in
  Wafl_telemetry.Telemetry.add "activemap.frees_committed" (List.length freed);
  Wafl_telemetry.Telemetry.add "activemap.pages_written" pages_written;
  { freed; pages_written }

let free_count t ~start ~len = Metafile.free_count t.metafile ~start ~len
let usable_free_count = free_count
