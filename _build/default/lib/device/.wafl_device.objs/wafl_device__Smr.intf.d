lib/device/smr.mli: Profile
