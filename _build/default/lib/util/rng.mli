(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through a seeded [t] so that every
    experiment is reproducible bit-for-bit.  The generator is xoshiro256**,
    seeded via splitmix64, following the reference implementations of
    Blackman & Vigna. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator whose stream is fully determined by
    [seed]. *)

val copy : t -> t
(** Independent copy: advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    Use to hand independent streams to sub-components. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (> 0). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
