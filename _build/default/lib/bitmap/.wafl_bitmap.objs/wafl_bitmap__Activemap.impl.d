lib/bitmap/activemap.ml: Bitmap List Metafile
