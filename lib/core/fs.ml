open Wafl_util
open Wafl_bitmap

type t = {
  config : Config.t;
  aggregate : Aggregate.t;
  walloc : Write_alloc.t;
  vols : Flexvol.t array;
  rng : Rng.t;
  temp : Temperature.t option;  (* Some iff config asks for > 1 class *)
  staged : (int * int * int, Cp.staged) Hashtbl.t;  (* (vol idx, file, offset) *)
  mutable staged_order : (int * int * int) list;
  mutable cps : int;
}

(* Optional process-wide registry of live systems, so batch drivers
   (waflsim) can audit every Fs an experiment built without the
   experiment having to surface its handles. *)
(* Post-CP hooks: process-wide callbacks run after every completed CP,
   with the system that ran it.  The background scrubber registers here so
   rate-limited verification rides between CPs without Cp or the callers
   knowing about it. *)
let post_cp_hooks : (t -> unit) list ref = ref []
let add_post_cp_hook f = post_cp_hooks := !post_cp_hooks @ [ f ]
let clear_post_cp_hooks () = post_cp_hooks := []

let registry_enabled = ref false
let registered_rev : t list ref = ref []
let enable_registry () =
  registry_enabled := true;
  registered_rev := []
let disable_registry () =
  registry_enabled := false;
  registered_rev := []
let registered () = List.rev !registered_rev

let create config =
  let aggregate = Aggregate.create config in
  let rng = Rng.create ~seed:config.Config.seed in
  let walloc = Write_alloc.create aggregate ~rng:(Rng.split rng) in
  let vols = Array.of_list (List.map Flexvol.create config.Config.vols) in
  Array.iter (Write_alloc.register_vol walloc) vols;
  let temp =
    let s = config.Config.streams in
    if s.Config.temp_classes > 1 then
      Some
        (Temperature.create ?meta_file:s.Config.meta_file
           ~classes:s.Config.temp_classes ())
    else None
  in
  let t =
    {
      config;
      aggregate;
      walloc;
      vols;
      rng;
      temp;
      staged = Hashtbl.create 4096;
      staged_order = [];
      cps = 0;
    }
  in
  if !registry_enabled then registered_rev := t :: !registered_rev;
  t

let config t = t.config
let aggregate t = t.aggregate
let write_alloc t = t.walloc
let vols t = t.vols
let temperature t = t.temp

let vol t name =
  match Array.find_opt (fun v -> String.equal (Flexvol.name v) name) t.vols with
  | Some v -> v
  | None -> raise Not_found

let rng t = t.rng

let vol_index t v =
  let rec go i =
    if i >= Array.length t.vols then invalid_arg "Fs.stage_write: foreign volume"
    else if t.vols.(i) == v then i
    else go (i + 1)
  in
  go 0

let stage_write t ~vol ~file ~offset =
  let key = (vol_index t vol, file, offset) in
  if not (Hashtbl.mem t.staged key) then t.staged_order <- key :: t.staged_order;
  Hashtbl.replace t.staged key { Cp.vol; file; offset }

let staged_count t = Hashtbl.length t.staged

let staged_ops t =
  List.rev_map
    (fun key ->
      let s = Hashtbl.find t.staged key in
      (Flexvol.name s.Cp.vol, s.Cp.file, s.Cp.offset))
    t.staged_order

let run_cp ?pool t =
  let writes = List.rev_map (fun key -> Hashtbl.find t.staged key) t.staged_order in
  (* run the CP before draining the staged table: it stands in for the
     NVRAM log, which survives a mid-CP crash so the ops can be replayed
     (re-running a partial CP is idempotent under COW) *)
  let report = Cp.run ?pool ?temp:t.temp t.walloc writes in
  Hashtbl.reset t.staged;
  t.staged_order <- [];
  t.cps <- t.cps + 1;
  List.iter (fun f -> f t) !post_cp_hooks;
  report

let cps_completed t = t.cps

let create_snapshot _t ~vol = Flexvol.create_snapshot vol

let delete_snapshot t ~vol id =
  let released = Flexvol.delete_snapshot vol id in
  List.iter
    (fun (vvbn, pvbn) ->
      (* the vvbn may have left the active map long ago (detached on
         overwrite); it is still allocated until this queued free commits *)
      Wafl_bitmap.Activemap.queue_free (Flexvol.activemap vol) vvbn;
      Aggregate.queue_free t.aggregate ~pvbn)
    released;
  List.length released

let file_read_chains _t ~vol ~file =
  (* walk offsets until a gap longer than a window, so dense files (our
     workloads) terminate without a sparse-file index *)
  let rec collect offset acc misses =
    if misses > 4096 then acc
    else begin
      match Flexvol.read_file vol ~file ~offset with
      | Some vvbn -> (
        match Flexvol.pvbn_of_vvbn vol vvbn with
        | Some pvbn -> collect (offset + 1) (pvbn :: acc) 0
        | None -> collect (offset + 1) acc (misses + 1))
      | None -> collect (offset + 1) acc (misses + 1)
    end
  in
  match collect 0 [] 0 with
  | [] -> Wafl_block.Chain.empty
  | blocks -> Wafl_block.Chain.of_blocks blocks

let total_metafile_pages_written t =
  let agg = (Metafile.stats (Aggregate.metafile t.aggregate)).Metafile.page_writes in
  Array.fold_left
    (fun acc v -> acc + (Metafile.stats (Flexvol.metafile v)).Metafile.page_writes)
    agg t.vols
