(* waflsim: run individual paper experiments from the command line. *)

open Cmdliner
open Wafl_experiments
open Wafl_telemetry

let scale_arg =
  let doc = "Experiment scale: 'quick' (seconds, CI-sized) or 'full'." in
  Arg.(value & opt string "quick" & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let metrics_out_arg =
  let doc =
    "Write a JSON telemetry report (counters, gauges, histograms, per-CP snapshots) to \
     $(docv) when the run finishes.  With $(b,.csv) as the extension the report is \
     rendered as CSV rows instead."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Enable structured event tracing (CP boundaries, AA picks, cache replenishes, tetris \
     writes, cleaner passes, free commits) and write the retained events to $(docv) — \
     CSV by default, JSON with a $(b,.json) extension."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_capacity_arg =
  let doc = "Ring-buffer capacity (events retained) for $(b,--trace-out)." in
  Arg.(value & opt int 65_536 & info [ "trace-capacity" ] ~docv:"N" ~doc)

let parse_scale s =
  match Common.scale_of_string s with
  | Some scale -> scale
  | None -> begin
    Printf.eprintf "unknown scale %S (expected quick|full)\n" s;
    exit 2
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* Fail before the (possibly minutes-long) experiment runs, not after. *)
let check_writable path =
  try close_out (open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path)
  with Sys_error msg ->
    Printf.eprintf "waflsim: cannot write %s: %s\n" path msg;
    exit 2

(* Run [f] with a telemetry instance installed when either output flag is
   given; flush the reports afterwards even if [f] raises. *)
let with_telemetry ~metrics_out ~trace_out ~trace_capacity f =
  match (metrics_out, trace_out) with
  | None, None -> f ()
  | _ ->
    if trace_capacity <= 0 then begin
      Printf.eprintf "waflsim: --trace-capacity must be positive (got %d)\n" trace_capacity;
      exit 2
    end;
    Option.iter check_writable metrics_out;
    Option.iter check_writable trace_out;
    let tel = Telemetry.create ~trace_capacity ~tracing:(trace_out <> None) () in
    let flush () =
      Option.iter
        (fun path ->
          let render =
            if Filename.check_suffix path ".csv" then Export.metrics_csv
            else Export.metrics_json
          in
          write_file path (render tel);
          Printf.printf "telemetry: metrics written to %s\n%!" path)
        metrics_out;
      Option.iter
        (fun path ->
          let render =
            if Filename.check_suffix path ".json" then Export.trace_json else Export.trace_csv
          in
          write_file path (render tel);
          Printf.printf "telemetry: trace written to %s\n%!" path)
        trace_out
    in
    Telemetry.with_installed tel (fun () -> Fun.protect ~finally:flush f)

let experiment_cmd name ~doc run_print =
  let run s metrics_out trace_out trace_capacity =
    with_telemetry ~metrics_out ~trace_out ~trace_capacity (fun () ->
        run_print (parse_scale s))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ scale_arg $ metrics_out_arg $ trace_out_arg $ trace_capacity_arg)

let fig6_cmd =
  experiment_cmd "fig6" ~doc:"AA-cache latency/throughput experiment (Figure 6)"
    (fun scale -> Fig6.print (Fig6.run ~scale ()))

let fig7_cmd =
  experiment_cmd "fig7" ~doc:"Imbalanced RAID-group aging under OLTP (Figure 7)"
    (fun scale -> Fig7.print (Fig7.run ~scale ()))

let fig8_cmd =
  experiment_cmd "fig8" ~doc:"SSD AA sizing experiment (Figure 8)"
    (fun scale -> Fig8.print (Fig8.run ~scale ()))

let fig9_cmd =
  experiment_cmd "fig9" ~doc:"SMR AZCS-alignment experiment (Figure 9)"
    (fun scale -> Fig9.print (Fig9.run ~scale ()))

let fig10_cmd =
  experiment_cmd "fig10" ~doc:"TopAA mount-time experiment (Figure 10)"
    (fun scale -> Fig10.print (Fig10.run ~scale ()))

let scalars_cmd =
  experiment_cmd "scalars" ~doc:"Section 4.1 scalar claims"
    (fun scale -> Scalars.print (Scalars.run ~scale ()))

let ablation_cmd =
  experiment_cmd "ablation"
    ~doc:"Design-choice ablations (bin width, policy, threshold, cleaner)"
    (fun scale -> Ablation.print (Ablation.run ~scale ()))

let all_cmd =
  experiment_cmd "all" ~doc:"Run every experiment" (fun scale ->
      Fig6.print (Fig6.run ~scale ());
      Fig7.print (Fig7.run ~scale ());
      Fig8.print (Fig8.run ~scale ());
      Fig9.print (Fig9.run ~scale ());
      Fig10.print (Fig10.run ~scale ());
      Scalars.print (Scalars.run ~scale ());
      Ablation.print (Ablation.run ~scale ()))

(* Bare `waflsim --metrics-out m.json` (no subcommand) runs the scalar
   suite — the cheapest end-to-end workload that exercises every
   instrumented layer — so the telemetry flags work without picking an
   experiment.  Without either flag the default remains the help page. *)
let default =
  let run s metrics_out trace_out trace_capacity =
    match (metrics_out, trace_out) with
    | None, None -> `Help (`Pager, None)
    | _ ->
      with_telemetry ~metrics_out ~trace_out ~trace_capacity (fun () ->
          Scalars.print (Scalars.run ~scale:(parse_scale s) ()));
      `Ok ()
  in
  Term.(
    ret (const run $ scale_arg $ metrics_out_arg $ trace_out_arg $ trace_capacity_arg))

let () =
  let info = Cmd.info "waflsim" ~doc:"WAFL free-block search reproduction experiments" in
  exit (Cmd.eval (Cmd.group ~default info [ fig6_cmd; fig7_cmd; fig8_cmd; fig9_cmd; fig10_cmd; scalars_cmd; ablation_cmd; all_cmd ]))
