lib/device/profile.ml:
