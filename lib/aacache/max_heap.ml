type t = {
  aas : int array;     (* heap array of AA ids *)
  scores : int array;  (* heap array of scores, parallel to aas *)
  pos : int array;     (* AA id -> index in heap array, -1 when absent *)
  mutable size : int;
}

let create ~n_aas =
  assert (n_aas > 0);
  { aas = Array.make n_aas 0; scores = Array.make n_aas 0; pos = Array.make n_aas (-1); size = 0 }

let size t = t.size
let capacity t = Array.length t.aas
let mem t aa = t.pos.(aa) >= 0

let swap t i j =
  let ai = t.aas.(i) and aj = t.aas.(j) in
  t.aas.(i) <- aj;
  t.aas.(j) <- ai;
  let si = t.scores.(i) in
  t.scores.(i) <- t.scores.(j);
  t.scores.(j) <- si;
  t.pos.(ai) <- j;
  t.pos.(aj) <- i

(* Ties broken toward the lower AA id, so equal-score regions are consumed
   in number-space order (keeps sequential fills sequential on media). *)
let better t i j =
  t.scores.(i) > t.scores.(j) || (t.scores.(i) = t.scores.(j) && t.aas.(i) < t.aas.(j))

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if better t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let largest = ref i in
  if left < t.size && better t left !largest then largest := left;
  if right < t.size && better t right !largest then largest := right;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let insert t ~aa ~score =
  if mem t aa then invalid_arg "Max_heap.insert: AA already present";
  if t.size >= capacity t then invalid_arg "Max_heap.insert: full";
  let i = t.size in
  t.aas.(i) <- aa;
  t.scores.(i) <- score;
  t.pos.(aa) <- i;
  t.size <- t.size + 1;
  sift_up t i

let of_scores scores =
  let n = Array.length scores in
  let t = create ~n_aas:n in
  Array.blit (Array.init n Fun.id) 0 t.aas 0 n;
  Array.blit scores 0 t.scores 0 n;
  for aa = 0 to n - 1 do
    t.pos.(aa) <- aa
  done;
  t.size <- n;
  (* Floyd heapify. *)
  for i = (n / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let peek_best t = if t.size = 0 then None else Some (t.aas.(0), t.scores.(0))

let best_score t = Option.map snd (peek_best t)
let top_score t = if t.size = 0 then 0 else t.scores.(0)

let remove_at t i =
  let aa = t.aas.(i) in
  let score = t.scores.(i) in
  let last = t.size - 1 in
  if i <> last then swap t i last;
  t.pos.(aa) <- -1;
  t.size <- last;
  if i < t.size then begin
    (* The element swapped into position i may violate order either way. *)
    sift_down t i;
    sift_up t i
  end;
  score

let extract_best t =
  match peek_best t with
  | None -> None
  | Some (aa, score) ->
    ignore (remove_at t 0);
    Some (aa, score)

(* Claim-aware take: extract the best entry satisfying [keep], restoring
   every rejected entry afterwards.  Rejections are rare (an AA is
   rejected only while another writer owns it), extraction order is
   deterministic (score, then lower AA id), and reinserting the rejected
   entries reproduces the exact original heap contents — so concurrent
   claimants see the same score order the serial path would. *)
let extract_best_filtered t ~keep =
  let rec go rejected =
    match extract_best t with
    | None -> (None, rejected)
    | Some (aa, score) as best ->
      if keep aa then (best, rejected) else go ((aa, score) :: rejected)
  in
  let best, rejected = go [] in
  List.iter (fun (aa, score) -> insert t ~aa ~score) rejected;
  best

let remove t ~aa =
  let i = t.pos.(aa) in
  if i < 0 then invalid_arg "Max_heap.remove: AA not present";
  remove_at t i

let score t ~aa =
  let i = t.pos.(aa) in
  if i < 0 then invalid_arg "Max_heap.score: AA not present";
  t.scores.(i)

let update t ~aa ~score =
  let i = t.pos.(aa) in
  if i < 0 then invalid_arg "Max_heap.update: AA not present";
  let old = t.scores.(i) in
  t.scores.(i) <- score;
  if score > old then sift_up t i else if score < old then sift_down t i

let apply_updates t updates =
  List.iter
    (fun (aa, new_score) ->
      if mem t aa then update t ~aa ~score:new_score else insert t ~aa ~score:new_score)
    updates

let top_k t k =
  (* Pull k best from a scratch copy; k is small (512 for TopAA). *)
  let scratch =
    {
      aas = Array.copy t.aas;
      scores = Array.copy t.scores;
      pos = Array.copy t.pos;
      size = t.size;
    }
  in
  let rec go acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      match extract_best scratch with
      | None -> List.rev acc
      | Some entry -> go (entry :: acc) (remaining - 1)
    end
  in
  go [] k

let to_sorted_list t = top_k t t.size

let check_invariant t =
  let order_ok = ref true in
  for i = 1 to t.size - 1 do
    if better t i ((i - 1) / 2) then order_ok := false
  done;
  let pos_ok = ref true in
  for i = 0 to t.size - 1 do
    if t.pos.(t.aas.(i)) <> i then pos_ok := false
  done;
  let absent_ok = ref true in
  Array.iteri
    (fun aa p ->
      if p >= 0 then begin
        if p >= t.size || t.aas.(p) <> aa then absent_ok := false
      end)
    t.pos;
  !order_ok && !pos_ok && !absent_ok
