(** Fixed-width-bin histograms over a bounded integer domain.

    Used both for measurement and as the counting half of the HBPS data
    structure (see {!Wafl_aacache.Hbps}), where values are AA scores in
    [\[0, max_value\]] and bins are 1k-wide score ranges. *)

type t

val create : max_value:int -> bin_width:int -> t
(** Histogram over values in [\[0, max_value\]] with bins of [bin_width].
    Both arguments must be positive.  The number of bins is
    [ceil((max_value + 1) / bin_width)]. *)

val bins : t -> int
(** Number of bins. *)

val bin_width : t -> int

val max_value : t -> int

val bin_of_value : t -> int -> int
(** Bin index holding a value; values are clamped into the domain. *)

val bin_range : t -> int -> int * int
(** [bin_range t i] is the inclusive value range [(lo, hi)] covered by bin
    [i]. *)

val add : t -> int -> unit
(** Count one occurrence of a value. *)

val remove : t -> int -> unit
(** Remove one occurrence; the bin count must be positive. *)

val move : t -> from_value:int -> to_value:int -> unit
(** [move t ~from_value ~to_value] reclassifies one item; constant time, and
    a no-op when both values fall in the same bin. *)

val count : t -> int -> int
(** Count in bin [i]. *)

val total : t -> int
(** Sum of all bin counts. *)

val highest_nonempty : t -> int option
(** Index of the highest-value non-empty bin, if any. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f bin count] from the highest-value bin downward. *)

val clear : t -> unit
