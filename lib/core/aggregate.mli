(** The aggregate: the physical WAFL file-system instance (§2.1).

    The physical VBN space is the concatenation of ranges, one per RAID
    group plus one per object-store span.  Each range carries its own AA
    topology (RAID-aware or RAID-agnostic), score array, AA cache and
    device simulator; the allocation bitmap (active map with delayed frees)
    is aggregate-wide.  One AA cache is built per range (§3.3). *)

type device_sim =
  | Hdd_sim of Wafl_device.Profile.hdd
  | Ssd_sim of Wafl_device.Ftl.t
  | Smr_sim of Wafl_device.Smr.t * Wafl_device.Azcs.tracker array
      (** one checksum tracker per data device *)
  | Object_sim of Wafl_device.Object_store.t

type range = {
  index : int;
  base : int;                         (** first aggregate PVBN of the range *)
  blocks : int;
  topology : Wafl_aa.Topology.t;      (** over range-local VBNs [0, blocks) *)
  geometry : Wafl_raid.Geometry.t option;  (** None for object ranges *)
  group : Wafl_raid.Group.t option;   (** RAID write accounting *)
  device : device_sim;
  scores : int array;                 (** per-AA free-block counts *)
  mutable cache : Wafl_aacache.Cache.t option;  (** None while disabled *)
  delta : Wafl_aa.Score.delta;        (** batched CP score changes *)
  media : Config.media option;        (** None for object ranges *)
  mutable fault : Wafl_fault.Fault.device option;
      (** fault-plane handle for this range's device; None = no faults *)
  mutable cache_epoch : int;
      (** validity stamp: the cache/scores are exact iff this equals the
          aggregate's rebuild epoch (see {!range_fresh}) *)
  owners : int Atomic.t array;
      (** per-AA claim slot: the claiming cursor/domain id, or -1 when
          unclaimed (see {!claim_aa}) *)
}

type t

val create : Config.t -> t
(** Builds the ranges and their caches.  If a process-wide fault spec is
    installed ({!Wafl_fault.Fault.install_default}), a fault plane is
    created from it and attached as by {!attach_faults}. *)

val attach_faults : t -> Wafl_fault.Fault.t -> unit
(** Create one fault-plane device handle per range (in range-index order,
    so RNG substreams are stable) and thread it into the range's device
    sim: FTL page writes, SMR block writes, AZCS checksum writes and
    object-store PUTs consult it; HDD ranges consult it from the CP cost
    model.  The handle is also kept on [range.fault] for the write
    allocator's bad-range / offline probes. *)

val config : t -> Config.t
val ranges : t -> range array
val total_blocks : t -> int
val activemap : t -> Wafl_bitmap.Activemap.t
val metafile : t -> Wafl_bitmap.Metafile.t

val range_of_pvbn : t -> int -> range
(** The range containing an aggregate PVBN. *)

val to_local : range -> int -> int
(** Aggregate PVBN to range-local VBN. *)

val to_global : range -> int -> int

val free_blocks : t -> int
val used_fraction : t -> float

val free_run_stats : t -> int * int
(** [(maximal free runs, largest run length)] over the whole physical VBN
    space — the fragmentation signal sampled into the per-CP time series
    (paper §4's cleaner-efficiency axis). *)

val allocate : t -> pvbn:int -> unit
(** Mark a PVBN allocated; records the score decrement in its range's
    delta. *)

val allocate_harvested : t -> range -> aa:int -> pvbn:int -> unit
(** Trusted {!allocate} for the write allocator's harvest rings: the
    caller names the PVBN's range and AA and guarantees the PVBN is
    free, skipping the range scan, the VBN->AA divisions, and the
    already-allocated re-check on the per-block hot path. *)

val queue_free : t -> pvbn:int -> unit
(** Queue a PVBN free for the next CP. *)

val commit_frees : ?pool:Wafl_par.Par.t -> t -> int * int list
(** Apply queued frees (noting score increments) and flush the aggregate
    bitmap metafile; returns (metafile pages written, freed PVBNs).  The
    freed list is what gets trimmed down to SSDs.  [pool] (defaulting to
    the installed one) parallelises the bit-clear apply — see
    {!Wafl_bitmap.Activemap.commit}. *)

val cp_update_caches : t -> unit
(** Apply each range's batched score delta to its score array and rebalance
    its cache — the CP-boundary step of §3.3. *)

(** {2 Cache validity epochs (incremental mount rebuild)}

    A range's scores and cache are {e exact} iff its [cache_epoch] equals
    the aggregate's rebuild epoch.  A lazy mount ({!Mount.mount}
    [~lazy_rebuild:true]) bumps the epoch, leaving every range stale but
    seeded; {!Rebuild.touch_range} re-materializes a stale range on first
    touch.  All rebuild orchestration goes through {!Rebuild.request} —
    the per-range primitive below is its building block. *)

val invalidate_caches : t -> unit
(** Bump the rebuild epoch: every range becomes stale (its seeded cache
    stays installed and usable until first touch). *)

val rebuild_epoch : t -> int

val range_fresh : t -> range -> bool

val mark_range_fresh : t -> range -> unit

val rebuild_range : ?pool:Wafl_par.Par.t -> t -> range -> unit
(** Recompute one range's scores from the bitmap, rebuild its cache and
    stamp it fresh.  With a pool (explicit, or installed process-wide)
    the per-AA rescoring is spread over its domains; every score slot is
    written exactly once with a pure function of the bitmap, so the score
    array — and the cache built from it — is bit-identical to a serial
    rebuild at any domain count.  Building block of {!Rebuild.request};
    callers use that API. *)

val disable_caches : t -> unit

val harvest_free_of_aa : t -> range -> int -> dst:int array -> words:int ref -> int
(** Fill [dst] (which must hold at least the AA's capacity) with the AA's
    free PVBNs in allocation order (stripe-major for RAID ranges,
    ascending otherwise), word-at-a-time, and return how many were
    written.  Adds the number of 32-bit bitmap words read to [words].
    The per-block loop performs no heap allocation — the §3.3
    harvest-cursor kernel.  (The PR-2 list-returning variant
    [free_vbns_of_aa] is gone; this caller-array form is the only
    harvest API.) *)

val harvest_free_of_aa_sharded :
  Wafl_par.Par.t ->
  t ->
  range ->
  int ->
  shards:int array array ->
  dst:int array ->
  words:int ref ->
  int
(** Pool-driven {!harvest_free_of_aa}: the AA's span is split into one
    32-aligned chunk per shard, each pool domain harvests its chunk into
    its own scratch ring, and the shards are concatenated into [dst] in
    chunk order — emission order, count and words-read accounting are
    identical to the serial harvest at any domain count.  Each shard
    must hold the AA's full capacity.  Falls back to the serial harvest
    when the span is too small to split. *)

val aa_score_now : t -> range -> int -> int
(** Recompute an AA's score from the bitmap (bypasses the cached array). *)

(** {2 Atomic AA claims (multi-writer allocation front-end)}

    An AA picked by any writer — the serial cursor or a parallel
    allocation shard — is {e claimed} with one compare-and-set on its
    owner slot, and stays owned by that writer until the CP boundary
    releases every claim.  One-owner-per-AA is the invariant that keeps
    the harvest kernels single-writer (two domains never consume, and so
    never allocate bits inside, the same AA concurrently). *)

val no_owner : int
(** The empty owner slot value (-1). *)

val aa_claimed : range -> aa:int -> bool

val claim_aa : range -> aa:int -> owner:int -> bool
(** Atomically claim the AA for [owner] (a small non-negative writer id);
    returns false when another writer already owns it.  Allocation-free
    (the slot holds an immediate int). *)

val release_aa : range -> aa:int -> unit
(** Release a claim (CP boundary; the caller serializes releases). *)
