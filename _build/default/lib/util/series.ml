type point = { x : float; y : float }

type t = { name : string; points : point list }

let make name pairs = { name; points = List.map (fun (x, y) -> { x; y }) pairs }

let peak_y t =
  match t.points with
  | [] -> invalid_arg "Series.peak_y: empty"
  | p :: ps -> List.fold_left (fun acc q -> Float.max acc q.y) p.y ps

let max_x t =
  match t.points with
  | [] -> invalid_arg "Series.max_x: empty"
  | p :: ps -> List.fold_left (fun acc q -> Float.max acc q.x) p.x ps

let y_at_last t =
  match List.rev t.points with
  | [] -> invalid_arg "Series.y_at_last: empty"
  | p :: _ -> p.y

let interpolate t x =
  let rec go = function
    | p :: (q :: _ as rest) ->
      if x >= p.x && x <= q.x then begin
        if q.x = p.x then Some p.y
        else begin
          let frac = (x -. p.x) /. (q.x -. p.x) in
          Some (p.y +. (frac *. (q.y -. p.y)))
        end
      end
      else go rest
    | [ p ] -> if x = p.x then Some p.y else None
    | [] -> None
  in
  go t.points

let pp fmt t =
  List.iter (fun p -> Format.fprintf fmt "%s %.6g %.6g@." t.name p.x p.y) t.points

let print_all ~header series =
  let tbl = Table.create ~columns:[ ("series", Table.Left); ("x", Table.Right); ("y", Table.Right) ] in
  List.iter
    (fun s ->
      List.iter
        (fun p -> Table.add_row tbl [ s.name; Printf.sprintf "%.6g" p.x; Printf.sprintf "%.6g" p.y ])
        s.points;
      Table.add_rule tbl)
    series;
  print_endline header;
  Table.print tbl
