(** Segment cleaning of allocation areas (§3.3.1).

    WAFL improves AA scores by relocating the contents of all in-use blocks
    of an AA elsewhere, leaving the AA completely empty.  Cleaning the AAs
    with the {e best} scores relocates the fewest blocks per reclaimed AA,
    so the cleaner works just-in-time off the top of the AA cache.  (The
    full defragmentation machinery is the subject of the paper's promised
    future publication; this module implements the mechanism the paper
    describes.) *)

type report = {
  aas_cleaned : int;
  blocks_relocated : int;
  blocks_reclaimed : int;  (** freed capacity in the cleaned AAs *)
}

type strategy =
  | Emptiest_first  (** just-in-time cleaning off the top of the AA cache —
                        the fewest relocations per reclaimed AA (§3.3.1) *)
  | Fullest_first   (** the anti-pattern, for comparison *)

val clean_fs : ?strategy:strategy -> Fs.t -> aas_per_range:int -> report
(** For each physical range, pick [aas_per_range] AAs per the strategy
    (default [Emptiest_first]), move every in-use block (remapping the
    owning volume's container entry) to blocks allocated elsewhere, and
    queue the old blocks for freeing.  Follow with {!Fs.run_cp} to commit;
    the cleaned AAs then report full scores. *)
