exception Crashed of { point : string; index : int }

type mode = Off | Recording | Armed of int

let mode = ref Off
let seen = ref 0
let recorded_rev : string list ref = ref []

let point name =
  match !mode with
  | Off -> ()
  | Recording ->
    recorded_rev := name :: !recorded_rev;
    incr seen
  | Armed k ->
    let i = !seen in
    seen := i + 1;
    if i = k then raise (Crashed { point = name; index = i })

let record () =
  recorded_rev := [];
  seen := 0;
  mode := Recording

let arm ~at =
  seen := 0;
  mode := Armed at

let disarm () =
  seen := 0;
  mode := Off

let recorded () = List.rev !recorded_rev
let count () = List.length !recorded_rev
