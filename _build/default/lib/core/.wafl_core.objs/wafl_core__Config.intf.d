lib/core/config.mli: Wafl_device
