(** Metrics registry: named counters, gauges and log₂-bucket histograms.

    Handles are cheap records meant to be resolved once (by name) and
    then updated directly on whatever path owns them.  Per-CP paths may
    instead go through the name-based helpers each time; the hot allocation
    path must not (see {!Tracer} for the per-pick instrument).  Metric
    names are dotted, e.g. ["cache.picks"].

    Domain safety: counters and gauges are [Atomic]-backed — concurrent
    [incr]/[add]/[set_max] from pool domains lose no updates — and
    registration of a new name is serialised by an internal lock.
    Histograms shard per observing domain and merge the shards on read,
    so concurrent [observe] from pool domains loses no updates either;
    a domain's observations are guaranteed visible to a reader once a
    synchronising edge (e.g. pool task completion) separates them. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or register the counter [name].  Raises [Invalid_argument] when
    the name is already registered as a different metric kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(* --- counters: monotonically increasing ints --- *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0]. *)

val count : counter -> int

(* --- gauges: last-written float --- *)

val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the maximum of the current and the offered value. *)

val value : gauge -> float

(* --- histograms: fixed log₂ buckets over non-negative ints ---

   Bucket 0 counts observations <= 0; bucket [i >= 1] counts observations
   [v] with [2^(i-1) <= v < 2^i].  The bucket count is fixed (63); the
   read accessors below merge the per-domain shards. *)

val observe : histogram -> int -> unit
val observations : histogram -> int
val sum : histogram -> int
val bucket_count : histogram -> int
val bucket : histogram -> int -> int
val bucket_lower_bound : int -> int
(** Smallest value landing in bucket [i] (0 for buckets 0 and 1). *)

val nonempty_buckets : histogram -> (int * int) list
(** [(bucket index, count)] for every populated bucket, ascending. *)

(* --- enumeration (registration order) --- *)

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

val name : metric -> string
val fold : t -> init:'a -> f:('a -> metric -> 'a) -> 'a
val find : t -> string -> metric option
val clear : t -> unit
(** Reset every metric to its zero state (handles stay valid). *)
