lib/bitmap/metafile.ml: Bitmap Bitops Units Wafl_block Wafl_util
