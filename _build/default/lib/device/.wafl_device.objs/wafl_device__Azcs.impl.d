lib/device/azcs.ml: Units Wafl_block
