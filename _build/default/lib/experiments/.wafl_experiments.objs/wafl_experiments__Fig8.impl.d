lib/experiments/fig8.ml: Aggregate Aging Array Common Config Fs Ftl List Load Printf Profile Random_overwrite Rng Series Wafl_aa Wafl_core Wafl_device Wafl_sim Wafl_util Wafl_workload
