open Wafl_util

type t = { bits : int; data : Pagestore.t }

let create ~bits =
  assert (bits >= 0);
  (* Round the backing store up to whole 8-byte words so the word-at-a-time
     loops never straddle the end; the tail bits stay clear forever because
     every mutator is bounds-checked against [bits]. *)
  let words = Bitops.ceil_div (max bits 1) 64 in
  { bits; data = Pagestore.create words }

let length t = t.bits

let backend t = Pagestore.backend t.data

let store t = t.data

let check t i = if i < 0 || i >= t.bits then invalid_arg "Bitmap: index out of bounds"

let[@inline] get t i =
  check t i;
  Pagestore.byte t.data (i lsr 3) land (1 lsl (i land 7)) <> 0

let[@inline] set t i =
  check t i;
  let byte = i lsr 3 in
  Pagestore.set_byte t.data byte (Pagestore.byte t.data byte lor (1 lsl (i land 7)))

let clear t i =
  check t i;
  let byte = i lsr 3 in
  Pagestore.set_byte t.data byte
    (Pagestore.byte t.data byte land lnot (1 lsl (i land 7)) land 0xff)

let check_range t ~start ~len =
  if start < 0 || len < 0 || start + len > t.bits then
    invalid_arg "Bitmap: range out of bounds"

(* OR (value) or AND-NOT (not value) an 8-bit mask into one backing byte. *)
let apply_byte_mask t byte mask ~value =
  let cur = Pagestore.byte t.data byte in
  let v = if value then cur lor mask else cur land lnot mask land 0xff in
  Pagestore.set_byte t.data byte v

let fill_range t ~start ~len ~value =
  check_range t ~start ~len;
  if len > 0 then begin
    (* Ragged head and tail as masked byte updates; whole bytes in bulk. *)
    let finish = start + len in
    let b0 = start lsr 3 and b1 = (finish - 1) lsr 3 in
    let head_mask = 0xff lsl (start land 7) land 0xff in
    let tail_mask = 0xff lsr (7 - ((finish - 1) land 7)) in
    if b0 = b1 then apply_byte_mask t b0 (head_mask land tail_mask) ~value
    else begin
      apply_byte_mask t b0 head_mask ~value;
      if b1 > b0 + 1 then
        Pagestore.fill t.data ~pos:(b0 + 1) ~len:(b1 - b0 - 1) (if value then 0xff else 0);
      apply_byte_mask t b1 tail_mask ~value
    end
  end

let set_range t ~start ~len = fill_range t ~start ~len ~value:true
let clear_range t ~start ~len = fill_range t ~start ~len ~value:false

let word t w = Pagestore.word t.data w

(* All-ones below bit [i+1]: mask selecting word bits [0, i]. *)
let low_mask64 i = Int64.shift_right_logical (-1L) (63 - i)

let count_set_in t ~start ~len =
  check_range t ~start ~len;
  if len = 0 then 0
  else begin
    let finish = start + len in
    let w0 = start / 64 and w1 = (finish - 1) / 64 in
    (* Ragged edges as masked popcounts — no per-bit loop, no re-checks. *)
    let head_mask = Int64.shift_left (-1L) (start land 63) in
    let tail_mask = low_mask64 ((finish - 1) land 63) in
    if w0 = w1 then Bitops.popcount64 (Int64.logand (word t w0) (Int64.logand head_mask tail_mask))
    else begin
      let count = ref (Bitops.popcount64 (Int64.logand (word t w0) head_mask)) in
      for w = w0 + 1 to w1 - 1 do
        count := !count + Bitops.popcount64 (word t w)
      done;
      !count + Bitops.popcount64 (Int64.logand (word t w1) tail_mask)
    end
  end

let count_set t = count_set_in t ~start:0 ~len:t.bits
let count_clear_in t ~start ~len = len - count_set_in t ~start ~len

(* Scan for the first bit at index >= from whose value matches [target].
   One ctz per candidate word: matching bits of a word are exposed by
   XORing with the all-ones pattern for a clear-scan (so a match is always
   a set bit), and the ragged head is a mask, not a per-bit loop. *)
let find_first t ~from ~target =
  if from < 0 then invalid_arg "Bitmap: negative index";
  if from >= t.bits then None
  else begin
    let xor_mask = if target then 0L else -1L in
    let nwords = Pagestore.words t.data in
    let rec scan w cand =
      if cand <> 0L then begin
        (* Tail bits past [bits] are stored clear, so an inverted scan can
           surface them in the final word; they are out of bounds. *)
        let i = (w * 64) + Bitops.ctz64 cand in
        if i < t.bits then Some i else None
      end
      else if w + 1 >= nwords then None
      else scan (w + 1) (Int64.logxor (word t (w + 1)) xor_mask)
    in
    let w0 = from / 64 in
    let head =
      Int64.logand
        (Int64.logxor (word t w0) xor_mask)
        (Int64.shift_left (-1L) (from land 63))
    in
    scan w0 head
  end

let find_first_clear t ~from = find_first t ~from ~target:false
let find_first_set t ~from = find_first t ~from ~target:true

let fold_free_runs t ~start ~len ~init ~f =
  check_range t ~start ~len;
  let finish = start + len in
  let rec go acc i =
    if i >= finish then acc
    else begin
      match find_first_clear t ~from:i with
      | None -> acc
      | Some run_start when run_start >= finish -> acc
      | Some run_start ->
        let run_end =
          match find_first_set t ~from:run_start with
          | Some e -> min e finish
          | None -> finish
        in
        let acc = f acc ~run_start ~run_len:(run_end - run_start) in
        go acc run_end
    end
  in
  go init start

let free_extents t ~start ~len =
  let runs =
    fold_free_runs t ~start ~len ~init:[] ~f:(fun acc ~run_start ~run_len ->
        Wafl_block.Extent.make ~start:run_start ~len:run_len :: acc)
  in
  List.rev runs

let free_run_stats t ~start ~len =
  fold_free_runs t ~start ~len ~init:(0, 0) ~f:(fun (runs, largest) ~run_start:_ ~run_len ->
      (runs + 1, if run_len > largest then run_len else largest))

(* --- word-at-a-time free-block harvest kernels (the §3.3 hot path) --- *)

let iter_clear_words t ~start ~len ~f =
  check_range t ~start ~len;
  if len > 0 then begin
    let finish = start + len in
    let w0 = start / 64 and w1 = (finish - 1) / 64 in
    for w = w0 to w1 do
      let m = Int64.lognot (word t w) in
      let m = if w = w0 then Int64.logand m (Int64.shift_left (-1L) (start land 63)) else m in
      let m = if w = w1 then Int64.logand m (low_mask64 ((finish - 1) land 63)) else m in
      if m <> 0L then f ~base:(w * 64) ~mask:m
    done
  end

let fold_clear_in t ~start ~len ~init ~f =
  let acc = ref init in
  iter_clear_words t ~start ~len ~f:(fun ~base ~mask ->
      let m = ref mask in
      while !m <> 0L do
        acc := f !acc (base + Bitops.ctz64 !m);
        m := Int64.logand !m (Int64.sub !m 1L)
      done);
  !acc

(* The zero-allocation variants below avoid [int64] entirely (int64 values
   are boxed): the scan works in 32-bit chunks assembled byte-by-byte into
   immediate native ints, at any bit offset, so a RAID-aware harvest can
   read a chunk of each device's extent without alignment gymnastics. *)

let clear_mask32 t pos =
  if pos < 0 || pos >= t.bits then invalid_arg "Bitmap: index out of bounds";
  let data = t.data in
  let n = Pagestore.length_bytes data in
  let byte = pos lsr 3 in
  let b0 = Pagestore.byte data byte in
  let b1 = if byte + 1 < n then Pagestore.byte data (byte + 1) else 0 in
  let b2 = if byte + 2 < n then Pagestore.byte data (byte + 2) else 0 in
  let b3 = if byte + 3 < n then Pagestore.byte data (byte + 3) else 0 in
  let b4 = if byte + 4 < n then Pagestore.byte data (byte + 4) else 0 in
  let raw = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) lor (b4 lsl 32) in
  let free = lnot (raw lsr (pos land 7)) land 0xFFFFFFFF in
  let remaining = t.bits - pos in
  if remaining >= 32 then free else free land ((1 lsl remaining) - 1)

let harvest_clear_into t ~start ~len ~offset ~dst ~pos =
  check_range t ~start ~len;
  let finish = start + len in
  let rec emit base m pos =
    if m = 0 then pos
    else begin
      dst.(pos) <- base + Bitops.ctz m;
      emit base (m land (m - 1)) (pos + 1)
    end
  in
  let rec chunks i pos =
    if i >= finish then pos
    else begin
      let m = clear_mask32 t i in
      let chunk = finish - i in
      let m = if chunk < 32 then m land ((1 lsl chunk) - 1) else m in
      chunks (i + 32) (emit (offset + i) m pos)
    end
  in
  chunks start pos

let copy t = { bits = t.bits; data = Pagestore.copy t.data }

let equal a b = a.bits = b.bits && Pagestore.equal a.data b.data

let blit ~src ~dst =
  if src.bits <> dst.bits then invalid_arg "Bitmap.blit: length mismatch";
  Pagestore.blit ~src:src.data ~dst:dst.data
