(** Bitmap metafiles: paged allocation bitmaps with I/O accounting.

    WAFL stores free-space state in flat metafiles indexed by VBN; each 4KiB
    metafile block covers 32k VBNs (§2.5, §3.2.1).  Every consistency point
    must write back each metafile block it dirtied, so the number of
    {e distinct} pages touched per CP is a direct file-system cost — the
    RAID-agnostic AA policy exists precisely to concentrate allocations into
    few pages.  This module tracks the allocated/free bit per VBN and counts
    dirty pages, page writes and page reads. *)

type t

type io_stats = {
  page_writes : int;  (** cumulative metafile blocks written by flushes *)
  page_reads : int;   (** cumulative metafile blocks read by scans *)
  flushes : int;      (** number of flushes (CPs) *)
}

val create : ?page_bits:int -> blocks:int -> unit -> t
(** Metafile tracking [blocks] VBNs, all initially free.  [page_bits]
    (default 32768, one 4KiB block) sets how many VBNs one metafile page
    covers; simulations scaled far below real device sizes shrink it
    together with the AA size so the page-per-AA alignment of §3.2.1 is
    preserved. *)

val page_bits : t -> int

val store : t -> Pagestore.t
(** The page store backing the map bitmap — the handle the integrity
    plane and the scrubber key their sidecar state on. *)

val blocks : t -> int
(** Number of VBNs tracked. *)

val pages : t -> int
(** Number of 4KiB metafile blocks backing the map. *)

val page_of_block : t -> int -> int
(** Metafile page that holds a VBN's bit. *)

val is_allocated : t -> int -> bool

val allocate : t -> int -> unit
(** Mark a VBN allocated; it must currently be free.  Dirties its page. *)

val allocate_harvested : t -> int -> unit
(** Trusted {!allocate} for the write-allocation hot path: the caller
    guarantees the VBN is currently free (harvest rings only hold free
    blocks), so the already-allocated check is skipped.  Still
    bounds-checked and still dirties the page. *)

val allocate_harvested_touched : t -> int -> touched:Bytes.t -> unit
(** {!allocate_harvested} that records the dirtied page as a nonzero
    byte in [touched] (length {!pages}) instead of updating the shared
    dirty state — the allocation-side mirror of {!free_batch_into}.
    Lets concurrent domains allocate into disjoint bitmap bytes without
    racing on the dirty bitmap; merge with {!mark_touched_dirty}. *)

val free : t -> int -> unit
(** Mark a VBN free; it must currently be allocated.  Dirties its page. *)

val allocate_range : t -> start:int -> len:int -> unit
(** Bulk-allocate a range of currently-free VBNs. *)

val free_count : t -> start:int -> len:int -> int
(** Free VBNs in a range — the AA score primitive.  Does not count as I/O
    (in-memory map); use {!scan_read} to model reading pages from media. *)

val used_count : t -> start:int -> len:int -> int

val fold_free_in : t -> start:int -> len:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over free VBNs in a range, ascending, word-at-a-time
    ({!Bitmap.fold_clear_in}). *)

val free_mask32 : t -> int -> int
(** 32-bit free mask at a VBN ({!Bitmap.clear_mask32}): bit [i] set iff
    VBN [pos + i] is in bounds and free.  Allocation-free. *)

val harvest_free_into : t -> start:int -> len:int -> offset:int -> dst:int array -> pos:int -> int
(** Emit [offset + vbn] for every free VBN of the range into [dst] from
    index [pos], ascending; returns the new fill position.  The
    zero-allocation batch gather under the AA harvest cursor. *)

val free_extents : t -> start:int -> len:int -> Wafl_block.Extent.t list
(** Maximal free runs inside a range. *)

val free_run_stats : t -> start:int -> len:int -> int * int
(** [(run count, largest run length)] over the range without
    materializing extents ({!Bitmap.free_run_stats}).  Not I/O-counted. *)

val find_first_free : t -> from:int -> int option

val free_batch_into : t -> vbns:int array -> pos:int -> len:int -> touched:Bytes.t -> unit
(** Free [vbns.(pos .. pos+len-1)] without updating the shared dirty
    state, recording each dirtied page as a nonzero byte in [touched]
    (length {!pages}).  Building block of the parallel delayed-free
    apply: callers partition VBNs so concurrent batches touch disjoint
    bitmap bytes and disjoint pages, then merge with
    {!mark_touched_dirty}.  Raises [Invalid_argument] on an
    already-free VBN, like [free]. *)

val mark_touched_dirty : t -> touched:Bytes.t -> unit
(** Fold a [touched] page set into the dirty state, ascending — the
    serial merge step after {!free_batch_into} batches.  The resulting
    dirty set equals what per-VBN [free] calls would have produced. *)

val dirty_pages : t -> int
(** Distinct pages dirtied since the last flush. *)

val flush : t -> int
(** Write back all dirty pages; returns how many were written and clears the
    dirty set.  Increments [flushes] even when nothing was dirty. *)

val scan_read : t -> start:int -> len:int -> int
(** Model reading every metafile page overlapping the range (as the
    mount-time full cache rebuild does, §3.4); returns and accounts the
    number of page reads.  Raises [Invalid_argument] when the range runs
    past the tracked VBN space. *)

val stats : t -> io_stats

val reset_stats : t -> unit

val snapshot : t -> Bitmap.t
(** Copy of the current bit state (for persistence and verification). *)

val load : t -> Bitmap.t -> unit
(** Replace the bit state from a snapshot of identical length; clears the
    dirty set (models reading a consistent on-disk image). *)
