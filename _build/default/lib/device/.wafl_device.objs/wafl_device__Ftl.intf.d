lib/device/ftl.mli: Profile
