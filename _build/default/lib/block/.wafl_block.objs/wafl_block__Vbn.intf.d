lib/block/vbn.mli: Format
