open Wafl_device

type media = Hdd of Profile.hdd | Ssd of Profile.ssd | Smr of Profile.smr

type raid_group_spec = {
  media : media;
  data_devices : int;
  parity_devices : int;
  device_blocks : int;
  aa_stripes : int option;
}

type object_range_spec = {
  profile : Profile.object_store;
  blocks : int;
  aa_blocks : int option;
}

type allocation_policy = Best_aa | Random_aa | First_fit

type vol_spec = {
  name : string;
  blocks : int;
  aa_blocks : int option;
  policy : allocation_policy;
}

type stream_spec = {
  temp_classes : int;
  ssd_streams : int;
  wear_bias : int;
  meta_file : int option;
}

let default_streams =
  { temp_classes = 1; ssd_streams = 1; wear_bias = 0; meta_file = None }

let default_streams_ref = ref default_streams
let set_default_streams s = default_streams_ref := s
let current_default_streams () = !default_streams_ref

let with_default_streams s f =
  let saved = !default_streams_ref in
  default_streams_ref := s;
  Fun.protect ~finally:(fun () -> default_streams_ref := saved) f

type t = {
  raid_groups : raid_group_spec list;
  object_ranges : object_range_spec list;
  vols : vol_spec list;
  aggregate_policy : allocation_policy;
  rg_score_threshold : int option;
  streams : stream_spec;
  seed : int;
}

let default_raid_group =
  {
    media = Hdd Profile.default_hdd;
    data_devices = 6;
    parity_devices = 1;
    device_blocks = 65536;
    aa_stripes = None;
  }

let default_vol ~name ~blocks = { name; blocks; aa_blocks = None; policy = Best_aa }

let make ?(raid_groups = [ default_raid_group ]) ?(object_ranges = []) ?(vols = [])
    ?(aggregate_policy = Best_aa) ?rg_score_threshold ?streams ?(seed = 42) () =
  let streams = Option.value streams ~default:!default_streams_ref in
  if streams.temp_classes < 1 || streams.temp_classes > 4 then
    invalid_arg "Config.make: temp_classes must be in 1..4";
  if streams.ssd_streams < 1 || streams.ssd_streams > 8 then
    invalid_arg "Config.make: ssd_streams must be in 1..8";
  if streams.wear_bias < 0 then invalid_arg "Config.make: wear_bias must be >= 0";
  { raid_groups; object_ranges; vols; aggregate_policy; rg_score_threshold; streams; seed }

let aa_stripes_for spec =
  let media_default =
    match spec.media with
    | Hdd _ -> Wafl_aa.Sizing.default_hdd_stripes
    | Ssd p -> Wafl_aa.Sizing.ssd_stripes p
    | Smr p -> Wafl_aa.Sizing.smr_stripes ~azcs:true p
  in
  let wanted = Option.value spec.aa_stripes ~default:media_default in
  max 1 (min wanted spec.device_blocks)

let media_name = function Hdd _ -> "hdd" | Ssd _ -> "ssd" | Smr _ -> "smr"
