open Wafl_block

let region_blocks = Units.azcs_region_blocks
let data_blocks = Units.azcs_data_blocks

let region_of_block b =
  assert (b >= 0);
  b / region_blocks

let checksum_block ~region = (region * region_blocks) + region_blocks - 1
let is_checksum_block b = b mod region_blocks = region_blocks - 1
let is_aligned n = n mod region_blocks = 0
let is_data_aligned n = n mod data_blocks = 0
let data_capacity n = (n / region_blocks * data_blocks) + min (n mod region_blocks) data_blocks

let device_position_of_data i =
  assert (i >= 0);
  i + (i / data_blocks)

let device_span_of_data n =
  assert (n >= 0);
  n + ((n + data_blocks - 1) / data_blocks)

type checksum_write = { block : int; sequential : bool }

type summary = {
  data_writes : int;
  sequential_checksum_writes : int;
  random_checksum_writes : int;
}

type visit = {
  region : int;
  mutable written : int;   (** data blocks written during this visit *)
  mutable in_order : bool; (** visit started at the region's first data block
                               and advanced one block at a time *)
  mutable last_pos : int;
}

type tracker = {
  mutable current : visit option;
  mutable data_writes : int;
  mutable seq_cs : int;
  mutable rand_cs : int;
  mutable fault : Wafl_fault.Fault.device option;
}

let create_tracker () =
  { current = None; data_writes = 0; seq_cs = 0; rand_cs = 0; fault = None }

let set_tracker_fault t f = t.fault <- f

let close_visit t v =
  (* A visit that covered every data block in order earns a sequential
     checksum append; anything else pays a random checksum write later.
     A fault on the checksum block itself (torn or failed) forces the
     drive to rewrite it out of order. *)
  let block = checksum_block ~region:v.region in
  let clean =
    match t.fault with
    | None -> true
    | Some dev -> (
      match Wafl_fault.Fault.write dev ~block with
      | Wafl_fault.Fault.Written -> true
      | Wafl_fault.Fault.Written_torn | Wafl_fault.Fault.Failed -> false)
  in
  let sequential = clean && v.in_order && v.written = data_blocks in
  if sequential then t.seq_cs <- t.seq_cs + 1 else t.rand_cs <- t.rand_cs + 1;
  { block; sequential }

let write t pos =
  if is_checksum_block pos then invalid_arg "Azcs.write: checksum block in data stream";
  t.data_writes <- t.data_writes + 1;
  let region = region_of_block pos in
  match t.current with
  | Some v when v.region = region ->
    if pos <> v.last_pos + 1 then v.in_order <- false;
    v.written <- v.written + 1;
    v.last_pos <- pos;
    []
  | current ->
    let emitted = match current with Some v -> [ close_visit t v ] | None -> [] in
    let in_order = pos = region * region_blocks in
    t.current <- Some { region; written = 1; in_order; last_pos = pos };
    emitted

let finish t =
  match t.current with
  | None -> []
  | Some v ->
    t.current <- None;
    [ close_visit t v ]

let summary t =
  {
    data_writes = t.data_writes;
    sequential_checksum_writes = t.seq_cs;
    random_checksum_writes = t.rand_cs;
  }
