test/test_experiments.ml: Ablation Alcotest Array Common Fig10 Fig7 Fig9 Float List Printf Wafl_core Wafl_experiments
