(** Background pagestore scrubber: rate-limited between-CPs verification
    of the persisted free-space state against its CRC sidecars
    ({!Wafl_bitmap.Integrity}), with self-healing.

    Damage that is only read when it is needed is damage found too late —
    so, like a production filer's continuous media scrub, this walks the
    integrity pages of every tracked store round-robin, a bounded number
    per CP, and heals what it finds: the overlapped aggregate ranges or
    volumes are quarantined through {!Rebuild.request}, the
    bitmap-vs-container disagreement is settled by {!Iron.repair} under
    container authority (the container maps are the redundant copy the
    damaged bitmap page is rebuilt from), and the page is resealed as the
    new truth.

    Each pass runs under the [scrub] telemetry span and counts
    [scrub.passes], [scrub.pages_verified], [scrub.bad_pages] and
    [scrub.healed]; the per-CP time series carries the cumulative
    [scrub_pages] / [scrub_bad] columns.  Everything is a no-op unless an
    mmap directory is installed (nothing is tracked otherwise). *)

type stats = { pages_verified : int; bad_pages : int; healed : int; passes : int }

val zero_stats : stats

val pass : ?pool:Wafl_par.Par.t -> Fs.t -> budget:int -> stats
(** Run one scrub pass over [fs] now: verify up to [budget] integrity
    pages from the system's round-robin cursor (CRC checks chunked over
    [pool] or the installed pool; healing serial), heal any torn/stale
    page found.  Returns what happened. *)

val enable : ?pool:Wafl_par.Par.t -> rate:int -> unit -> unit
(** Install the scrubber as a process-wide post-CP hook
    ({!Fs.add_post_cp_hook}): after every completed CP on any system, one
    {!pass} with [budget = rate] runs on that system.  A full sweep of
    [N] tracked pages therefore takes [ceil (N / rate)] CPs.  [rate = 0]
    disables without unregistering; calling again updates rate and
    pool. *)

val disable : unit -> unit
(** Stop scrubbing (equivalent to [rate = 0]). *)

val enabled : unit -> bool

val current_rate : unit -> int
