lib/experiments/fig10.ml: Common Config Fs List Mount Printf Wafl_core Wafl_util
