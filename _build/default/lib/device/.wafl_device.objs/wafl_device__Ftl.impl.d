lib/device/ftl.ml: Bytes Float Hashtbl List Profile
