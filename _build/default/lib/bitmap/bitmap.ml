open Wafl_util

type t = { bits : int; data : Bytes.t }

let create ~bits =
  assert (bits >= 0);
  (* Round the backing store up to whole 8-byte words so the word-at-a-time
     loops never straddle the end; the tail bits stay clear forever because
     every mutator is bounds-checked against [bits]. *)
  let words = Bitops.ceil_div (max bits 1) 64 in
  { bits; data = Bytes.make (words * 8) '\000' }

let length t = t.bits

let check t i = if i < 0 || i >= t.bits then invalid_arg "Bitmap: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = i lsr 3 in
  let v = Char.code (Bytes.unsafe_get t.data byte) lor (1 lsl (i land 7)) in
  Bytes.unsafe_set t.data byte (Char.unsafe_chr v)

let clear t i =
  check t i;
  let byte = i lsr 3 in
  let v = Char.code (Bytes.unsafe_get t.data byte) land lnot (1 lsl (i land 7)) land 0xff in
  Bytes.unsafe_set t.data byte (Char.unsafe_chr v)

let check_range t ~start ~len =
  if start < 0 || len < 0 || start + len > t.bits then
    invalid_arg "Bitmap: range out of bounds"

let fill_range t ~start ~len ~value =
  check_range t ~start ~len;
  (* Handle the ragged head and tail bit-by-bit; fill whole bytes in bulk. *)
  let finish = start + len in
  let head_end = min finish (Bitops.round_up start 8) in
  for i = start to head_end - 1 do
    if value then set t i else clear t i
  done;
  if head_end < finish then begin
    let tail_start = max head_end (Bitops.round_down finish 8) in
    let byte_lo = head_end lsr 3 and byte_hi = tail_start lsr 3 in
    if byte_hi > byte_lo then
      Bytes.fill t.data byte_lo (byte_hi - byte_lo) (if value then '\255' else '\000');
    for i = tail_start to finish - 1 do
      if value then set t i else clear t i
    done
  end

let set_range t ~start ~len = fill_range t ~start ~len ~value:true
let clear_range t ~start ~len = fill_range t ~start ~len ~value:false

let word t w = Bytes.get_int64_le t.data (w * 8)

let count_set_in t ~start ~len =
  check_range t ~start ~len;
  if len = 0 then 0
  else begin
    let finish = start + len in
    let count = ref 0 in
    let head_end = min finish (Bitops.round_up start 64) in
    for i = start to head_end - 1 do
      if get t i then incr count
    done;
    if head_end < finish then begin
      let tail_start = max head_end (Bitops.round_down finish 64) in
      let w = ref (head_end / 64) in
      while !w < tail_start / 64 do
        count := !count + Bitops.popcount64 (word t !w);
        incr w
      done;
      for i = tail_start to finish - 1 do
        if get t i then incr count
      done
    end;
    !count
  end

let count_set t = count_set_in t ~start:0 ~len:t.bits
let count_clear_in t ~start ~len = len - count_set_in t ~start ~len

(* Scan for the first bit at index >= from whose value matches [target].
   Skips whole words of the opposite value. *)
let find_first t ~from ~target =
  if from < 0 then invalid_arg "Bitmap: negative index";
  if from >= t.bits then None
  else begin
    let skip_word = if target then 0L else -1L in
    let rec scan_words w =
      if w * 64 >= t.bits then None
      else if word t w = skip_word then scan_words (w + 1)
      else begin
        let base = w * 64 in
        let rec scan_bits i =
          if i >= 64 || base + i >= t.bits then scan_words (w + 1)
          else if get t (base + i) = target then Some (base + i)
          else scan_bits (i + 1)
        in
        scan_bits 0
      end
    in
    (* Ragged prefix up to the next word boundary; if that boundary is the
       end of the map there is nothing left for the word scan (and letting it
       run would revisit bits below [from]). *)
    let head_end = min t.bits (Bitops.round_up (from + 1) 64) in
    let rec scan_head i =
      if i >= head_end then
        if head_end >= t.bits then None else scan_words (head_end / 64)
      else if get t i = target then Some i
      else scan_head (i + 1)
    in
    scan_head from
  end

let find_first_clear t ~from = find_first t ~from ~target:false
let find_first_set t ~from = find_first t ~from ~target:true

let fold_free_runs t ~start ~len ~init ~f =
  check_range t ~start ~len;
  let finish = start + len in
  let rec go acc i =
    if i >= finish then acc
    else begin
      match find_first_clear t ~from:i with
      | None -> acc
      | Some run_start when run_start >= finish -> acc
      | Some run_start ->
        let run_end =
          match find_first_set t ~from:run_start with
          | Some e -> min e finish
          | None -> finish
        in
        let acc = f acc ~run_start ~run_len:(run_end - run_start) in
        go acc run_end
    end
  in
  go init start

let free_extents t ~start ~len =
  let runs =
    fold_free_runs t ~start ~len ~init:[] ~f:(fun acc ~run_start ~run_len ->
        Wafl_block.Extent.make ~start:run_start ~len:run_len :: acc)
  in
  List.rev runs

let copy t = { bits = t.bits; data = Bytes.copy t.data }

let equal a b = a.bits = b.bits && Bytes.equal a.data b.data

let blit ~src ~dst =
  if src.bits <> dst.bits then invalid_arg "Bitmap.blit: length mismatch";
  Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data)
