(* Tests for the lock-free multi-writer allocation front-end: the two
   hard invariants (bit-identical final state vs. serial on
   drain-symmetric workloads at every domain count, zero minor-heap
   words per block in the pop-consume loop), conservation (no double
   handout, no lost concurrent free), and the mmap pagestore remount
   path. *)

open Wafl_bitmap
open Wafl_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Byte-aligned geometry (every AA extent starts and ends on a bitmap
   byte), so the front-end's static [parallel_capable] gate opens. *)
let par_config =
  let rg =
    {
      Config.media = Config.Hdd Wafl_device.Profile.default_hdd;
      data_devices = 4;
      parity_devices = 1;
      device_blocks = 8192;
      aa_stripes = Some 512;
    }
  in
  Config.make ~raid_groups:[ rg; rg ]
    ~vols:[ Config.default_vol ~name:"vol0" ~blocks:65536 ]
    ~aggregate_policy:Config.Best_aa ~seed:7 ()

let agg_bitmap fs = Metafile.snapshot (Aggregate.metafile (Fs.aggregate fs))

(* Allocate until the aggregate is dry, asserting the zero-allocation
   contract after every batch that went through the parallel window. *)
let fill_to_capacity wa =
  let dst = Array.make 4096 0 in
  let out = ref [] in
  let rec go () =
    let got = Write_alloc.allocate_pvbns_into wa ~dst 4096 in
    Array.iter
      (fun s ->
        check_int "minor words per shard" 0 s.Write_alloc.ps_minor_words)
      (Write_alloc.last_par_stats wa);
    if got > 0 then begin
      out := Array.sub dst 0 got :: !out;
      go ()
    end
  in
  go ();
  Array.concat (List.rev !out)

let check_all_distinct label pvbns =
  let sorted = Array.copy pvbns in
  Array.sort compare sorted;
  let dup = ref false in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then dup := true
  done;
  check_bool (label ^ ": no pvbn handed out twice") false !dup

let test_capable () =
  let fs = Fs.create par_config in
  check_bool "byte-aligned config is parallel-capable" true
    (Write_alloc.parallel_capable (Fs.write_alloc fs))

(* The tentpole invariant: a drain-symmetric workload (fill every
   allocatable block, then free them all back) leaves state
   bit-identical to the serial allocator at every domain count, hands
   no block out twice, and loses no concurrent free. *)
let hammer jobs =
  (* Serial reference. *)
  let fs_s = Fs.create par_config in
  let pv_s = fill_to_capacity (Fs.write_alloc fs_s) in
  check_int "serial fill drains the aggregate" 0
    (Aggregate.free_blocks (Fs.aggregate fs_s));
  let want = agg_bitmap fs_s in
  (* Parallel run. *)
  Write_alloc.install_alloc_pool ~jobs;
  Fun.protect ~finally:Write_alloc.uninstall_alloc_pool (fun () ->
      let fs = Fs.create par_config in
      let wa = Fs.write_alloc fs in
      let before = agg_bitmap fs in
      let free0 = Aggregate.free_blocks (Fs.aggregate fs) in
      let pv = fill_to_capacity wa in
      let label = Printf.sprintf "jobs=%d" jobs in
      check_int (label ^ ": same blocks handed out") (Array.length pv_s)
        (Array.length pv);
      check_all_distinct label pv;
      check_int (label ^ ": parallel fill drains the aggregate") 0
        (Aggregate.free_blocks (Fs.aggregate fs));
      check_bool
        (label ^ ": final bitmap identical to serial")
        true
        (Bitmap.equal want (agg_bitmap fs));
      if jobs > 1 then
        check_int (label ^ ": one shard per domain") jobs
          (Array.length (Write_alloc.last_par_stats wa));
      check_int (label ^ ": claim CAS races") 0 (Write_alloc.claim_conflicts wa);
      (* CP boundary releases every claim and refiles taken AAs. *)
      Write_alloc.cp_finish wa;
      (* Free everything back through the concurrent per-slot queues. *)
      Write_alloc.prepare_par wa ~jobs;
      Array.iteri
        (fun i pvbn -> Write_alloc.queue_free_par wa ~slot:(i mod jobs) ~pvbn)
        pv;
      check_int (label ^ ": no concurrent free lost") (Array.length pv)
        (Write_alloc.drain_queued_frees wa);
      ignore (Aggregate.commit_frees (Fs.aggregate fs));
      check_int (label ^ ": all blocks free again") free0
        (Aggregate.free_blocks (Fs.aggregate fs));
      check_bool
        (label ^ ": free-all restores the pre-fill bitmap")
        true
        (Bitmap.equal before (agg_bitmap fs)))

let test_hammer_jobs2 () = hammer 2
let test_hammer_jobs4 () = hammer 4
let test_hammer_jobs8 () = hammer 8

(* jobs=1 through the front-end API must behave exactly like no pool at
   all (install_alloc_pool ~jobs:1 is a no-op uninstall, and
   alloc_pool_jobs reports the serial degree 1). *)
let test_jobs1_is_serial () =
  Write_alloc.install_alloc_pool ~jobs:1;
  check_int "jobs=1 leaves no pool" 1 (Write_alloc.alloc_pool_jobs ())

(* Whole CPs with the pool installed: the op-for-op identical workload
   must allocate exactly as many blocks as the serial system (the
   blocks chosen may differ — picks interleave — but none may be lost
   or duplicated, and the activemap's internal validation would fail
   the CP on any double handout). *)
let test_pooled_cps_conserve () =
  let run fs =
    let vol = (Fs.vols fs).(0) in
    for cp = 0 to 2 do
      for i = 0 to 2047 do
        Fs.stage_write fs ~vol ~file:(cp mod 2) ~offset:i
      done;
      ignore (Fs.run_cp fs)
    done;
    Aggregate.free_blocks (Fs.aggregate fs)
  in
  let free_serial = run (Fs.create par_config) in
  Write_alloc.install_alloc_pool ~jobs:4;
  Fun.protect ~finally:Write_alloc.uninstall_alloc_pool (fun () ->
      let free_par = run (Fs.create par_config) in
      check_int "pooled CPs allocate the same block count" free_serial free_par)

(* --- mmap pagestore: remount reproduces persisted state --- *)

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
  else Sys.mkdir dir 0o700;
  dir

let test_mmap_remount () =
  let dir = fresh_dir "wafl_test_allocpar_mmap" in
  let bits_a = 4096 and bits_b = 10000 in
  (* First process: create two stores (deterministic ps0/ps1 sequence)
     and persist a bit pattern into each. *)
  Pagestore.with_mmap_dir dir (fun () ->
      let a = Bitmap.create ~bits:bits_a in
      let b = Bitmap.create ~bits:bits_b in
      Bitmap.set a 7;
      Bitmap.set a 4090;
      Bitmap.set_range b ~start:100 ~len:33);
  (* Remount: the same creation order maps the same files, so the bits
     come back without any explicit load step. *)
  Pagestore.with_mmap_dir dir (fun () ->
      let a = Bitmap.create ~bits:bits_a in
      let b = Bitmap.create ~bits:bits_b in
      check_bool "bit 7 persisted" true (Bitmap.get a 7);
      check_bool "bit 4090 persisted" true (Bitmap.get a 4090);
      check_int "store a population" 2 (Bitmap.count_set a);
      check_int "store b population" 33 (Bitmap.count_set b);
      check_bool "unset bit stays unset" false (Bitmap.get b 99));
  (* A size change must not inherit stale bytes: recreating store a at a
     different word count zero-fills it. *)
  Pagestore.with_mmap_dir dir (fun () ->
      let a = Bitmap.create ~bits:(2 * bits_a) in
      check_int "resized store is zero-filled" 0 (Bitmap.count_set a))

let test_mmap_explicit_backend_stays_anonymous () =
  let dir = fresh_dir "wafl_test_allocpar_mmap2" in
  Pagestore.with_mmap_dir dir (fun () ->
      let n_before = Array.length (Sys.readdir dir) in
      let s = Pagestore.create ~backend:Pagestore.Heap 16 in
      ignore (Pagestore.words s);
      check_int "explicit-backend create maps no file" n_before
        (Array.length (Sys.readdir dir)))

let () =
  Alcotest.run "allocpar"
    [
      ( "front-end",
        [
          Alcotest.test_case "parallel capable" `Quick test_capable;
          Alcotest.test_case "jobs=1 is serial" `Quick test_jobs1_is_serial;
          Alcotest.test_case "hammer jobs=2" `Quick test_hammer_jobs2;
          Alcotest.test_case "hammer jobs=4" `Quick test_hammer_jobs4;
          Alcotest.test_case "hammer jobs=8" `Slow test_hammer_jobs8;
          Alcotest.test_case "pooled CPs conserve" `Quick
            test_pooled_cps_conserve;
        ] );
      ( "mmap backend",
        [
          Alcotest.test_case "remount reproduces state" `Quick
            test_mmap_remount;
          Alcotest.test_case "explicit backend stays anonymous" `Quick
            test_mmap_explicit_backend_stays_anonymous;
        ] );
    ]
