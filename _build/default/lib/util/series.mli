(** Named (x, y) data series, as printed for each reproduced figure. *)

type point = { x : float; y : float }

type t = { name : string; points : point list }

val make : string -> (float * float) list -> t

val peak_y : t -> float
(** Largest y value; the series must be non-empty. *)

val max_x : t -> float
(** Largest x value; the series must be non-empty. *)

val y_at_last : t -> float
(** y of the final point (series are built in sweep order). *)

val interpolate : t -> float -> float option
(** [interpolate t x] linearly interpolates y at [x]; [None] outside the
    x-range.  Points must be in increasing-x order. *)

val pp : Format.formatter -> t -> unit
(** One line per point: [name x y]. *)

val print_all : header:string -> t list -> unit
(** Print several series under a header as a combined table to stdout. *)
