lib/util/series.ml: Float Format List Printf Table
