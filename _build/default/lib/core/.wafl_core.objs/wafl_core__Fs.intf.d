lib/core/fs.mli: Aggregate Config Cp Flexvol Wafl_block Wafl_util Write_alloc
