open Wafl_util
module Pagestore = Wafl_bitmap.Pagestore

type error = Bad_magic | Bad_version | Bad_checksum | Bad_layout

let pp_error fmt = function
  | Bad_magic -> Format.pp_print_string fmt "bad magic"
  | Bad_version -> Format.pp_print_string fmt "bad version"
  | Bad_checksum -> Format.pp_print_string fmt "bad checksum"
  | Bad_layout -> Format.pp_print_string fmt "bad layout"

let block_size = 4096
let version = 1

let magic_raid_aware = 0x54414152l (* "RAAT" *)
let magic_histogram = 0x54414148l (* "HAAT" *)
let magic_list = 0x5441414Cl (* "LAAT" *)

(* Common layout: [magic u32][version u16][count u16][payload...][crc u32 at
   block end]; the CRC covers everything before it. *)
let header_bytes = 8
let crc_bytes = 4

let new_block magic count =
  let b = Bytes.make block_size '\000' in
  Bytes.set_int32_le b 0 magic;
  Bytes.set_uint16_le b 4 version;
  Bytes.set_uint16_le b 6 count;
  b

(* Blocks are staged in [Bytes] while being (de)serialized, but live as
   {!Pagestore} pages — the same backend as the bitmaps they seed, so a
   bigarray-backed system keeps its TopAA state off-heap too. *)
let seal b =
  let crc = Checksum.crc32 b ~pos:0 ~len:(block_size - crc_bytes) in
  Bytes.set_int32_le b (block_size - crc_bytes) crc;
  Pagestore.of_bytes b

let open_block magic page =
  if Pagestore.length_bytes page <> block_size then Error Bad_layout
  else begin
  let b = Pagestore.to_bytes page in
  if Bytes.get_int32_le b 0 <> magic then Error Bad_magic
  else if Bytes.get_uint16_le b 4 <> version then Error Bad_version
  else begin
    let stored = Bytes.get_int32_le b (block_size - crc_bytes) in
    let computed = Checksum.crc32 b ~pos:0 ~len:(block_size - crc_bytes) in
    if stored <> computed then Error Bad_checksum
    else Ok (Bytes.get_uint16_le b 6, b)
  end
  end

let raid_aware_capacity = (block_size - header_bytes - crc_bytes) / 8

let save_raid_aware heap =
  let entries = Max_heap.top_k heap raid_aware_capacity in
  let b = new_block magic_raid_aware (List.length entries) in
  List.iteri
    (fun i (aa, score) ->
      let off = header_bytes + (i * 8) in
      Bytes.set_int32_le b off (Int32.of_int aa);
      Bytes.set_int32_le b (off + 4) (Int32.of_int score))
    entries;
  seal b

let load_raid_aware page =
  match open_block magic_raid_aware page with
  | Error _ as e -> e
  | Ok (count, b) ->
    if count > raid_aware_capacity then Error Bad_layout
    else begin
      let entries =
        List.init count (fun i ->
            let off = header_bytes + (i * 8) in
            ( Int32.to_int (Bytes.get_int32_le b off),
              Int32.to_int (Bytes.get_int32_le b (off + 4)) ))
      in
      Ok entries
    end

type hbps_seed = {
  bin_width : int;
  max_score : int;
  bin_counts : int array;
  entries : (int * int) list;
}

(* Histogram page payload: [bin_width u32][max_score u32][bins u16] then per
   bin [count u32][seg_len u16]. *)
let save_hbps hbps =
  let bins = Hbps.bins hbps in
  let histogram = new_block magic_histogram bins in
  Bytes.set_int32_le histogram header_bytes (Int32.of_int (Hbps.bin_width hbps));
  Bytes.set_int32_le histogram (header_bytes + 4)
    (Int32.of_int (Hbps.bin_width hbps * bins));
  let per_bin_off b = header_bytes + 8 + (b * 6) in
  let listed = Hbps.to_list hbps in
  let seg_counts = Array.make bins 0 in
  List.iter
    (fun (_aa, score) ->
      let b = score / Hbps.bin_width hbps in
      let b = min b (bins - 1) in
      seg_counts.(b) <- seg_counts.(b) + 1)
    listed;
  for b = 0 to bins - 1 do
    let off = per_bin_off b in
    Bytes.set_int32_le histogram off (Int32.of_int (Hbps.histogram_count hbps ~bin:b));
    Bytes.set_uint16_le histogram (off + 4) seg_counts.(b)
  done;
  let list_page = new_block magic_list (Hbps.count hbps) in
  List.iteri
    (fun i (aa, _score) ->
      Bytes.set_int32_le list_page (header_bytes + (i * 4)) (Int32.of_int aa))
    listed;
  (seal histogram, seal list_page)

let load_hbps (histogram_page, list_page) =
  match open_block magic_histogram histogram_page with
  | Error _ as e -> e
  | Ok (bins, histogram) -> (
    if header_bytes + 8 + (bins * 6) > block_size - crc_bytes then Error Bad_layout
    else begin
      let bin_width = Int32.to_int (Bytes.get_int32_le histogram header_bytes) in
      let max_score = Int32.to_int (Bytes.get_int32_le histogram (header_bytes + 4)) in
      let per_bin_off b = header_bytes + 8 + (b * 6) in
      let bin_counts =
        Array.init bins (fun b -> Int32.to_int (Bytes.get_int32_le histogram (per_bin_off b)))
      in
      let seg_counts =
        Array.init bins (fun b -> Bytes.get_uint16_le histogram (per_bin_off b + 4))
      in
      match open_block magic_list list_page with
      | Error _ as e -> e
      | Ok (count, list_page) ->
        if
          count <> Array.fold_left ( + ) 0 seg_counts
          || header_bytes + (count * 4) > block_size - crc_bytes
        then Error Bad_layout
        else begin
          let ids =
            Array.init count (fun i ->
                Int32.to_int (Bytes.get_int32_le list_page (header_bytes + (i * 4))))
          in
          (* Entries are stored highest bin first; recover each id's bin
             from the segment counts. *)
          let entries = ref [] in
          let idx = ref 0 in
          for b = bins - 1 downto 0 do
            for _ = 1 to seg_counts.(b) do
              entries := (ids.(!idx), b) :: !entries;
              incr idx
            done
          done;
          Ok { bin_width; max_score; bin_counts; entries = List.rev !entries }
        end
    end)

let seed_scores seed =
  List.map (fun (aa, bin) -> (aa, bin * seed.bin_width)) seed.entries
