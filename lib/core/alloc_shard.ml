(* Per-domain allocation shard: a single-owner harvest ring with lock-free
   work stealing, plus the per-domain accumulators (score delta, touched
   metafile pages, free queue, counters) the serial merge folds back at
   the end of a parallel allocation window.

   Ring protocol.  The live region [lo, hi) of [ring] is packed with a
   version counter into one atomic int: ver|lo|hi, 21 bits each.  The
   owner pops from the front with a CAS that advances [lo]; a thief takes
   a suffix [split, hi) by CAS-ing [hi] down to [split].  The owner is
   the only writer of [ver] and [lo]; thieves only lower [hi].  A refill
   (only ever issued by the owner, and only on an empty ring) rewrites
   the entries and the [ring_range]/[ring_aa] plain fields, then
   publishes (ver+1, 0, count) with a release store — any thief that read
   the old version has its CAS fail and discards whatever it copied, so
   reading entries or the plain fields concurrently with a rewrite is a
   benign race (the copy is validated by the version before use).  The
   21-bit version makes ABA across 2^21 refills of one shard impossible
   within a window (windows publish far fewer).

   Steal splits land on bitmap-byte boundaries.  Ring entries are one
   AA's free VBNs in emission order, and both harvest layouts emit with a
   monotone "byte group": contiguous AAs ascend in [pvbn lsr 3], while
   RAID-aware AAs emit stripe-major across devices, so the group is the
   stripe-byte [((pvbn - base) mod device_blocks) lsr 3] — the same
   stripe group on different devices maps to different (byte-aligned)
   bitmap bytes, but one device's byte recurs whenever its stripe group
   recurs.  Each publish records the group parameters ([key_base],
   [key_mod]); a steal advances the split until the group changes, so the
   stolen suffix's groups are strictly above every group the victim has
   popped or can still pop — no bitmap byte is ever read-modify-written
   by two domains. *)

type t = {
  id : int;                   (* shard index; claim owner id is [id + 1] *)
  ring : int array;
  state : int Atomic.t;       (* packed ver|lo|hi *)
  mutable ring_range : int;   (* range index of the live entries *)
  mutable ring_aa : int;      (* AA of the live entries *)
  mutable key_base : int;     (* byte-group origin of the live entries *)
  mutable key_mod : int;      (* byte-group period (0 = contiguous layout) *)
  deltas : Wafl_aa.Score.delta array;  (* per physical range *)
  touched : Bytes.t;          (* aggregate-metafile pages this shard dirtied *)
  words : int ref;            (* bitmap words read by this shard's harvests *)
  mutable free_q : int array; (* queued concurrent frees *)
  mutable n_free : int;
  mutable allocated : int;    (* window counters, reset at window start *)
  mutable harvested : int;
  mutable taken : int;
  mutable score_sum : int;
  mutable steals : int;
  mutable high_water : int;
  mutable consume_minor : int;  (* minor-heap words inside pop-consume loops *)
}

let bits = 21
let mask = (1 lsl bits) - 1
let[@inline] pack ~ver ~lo ~hi = (ver lsl (2 * bits)) lor (lo lsl bits) lor hi
let[@inline] ver_of s = (s lsr (2 * bits)) land mask
let[@inline] lo_of s = (s lsr bits) land mask
let[@inline] hi_of s = s land mask

let create ~id ~capacity ~deltas ~touched_pages =
  if capacity > mask then invalid_arg "Alloc_shard.create: capacity over 2^21";
  {
    id;
    ring = Array.make (max 1 capacity) 0;
    state = Atomic.make (pack ~ver:0 ~lo:0 ~hi:0);
    ring_range = 0;
    ring_aa = 0;
    key_base = 0;
    key_mod = 0;
    deltas;
    touched = Bytes.make touched_pages '\000';
    words = ref 0;
    free_q = Array.make 256 0;
    n_free = 0;
    allocated = 0;
    harvested = 0;
    taken = 0;
    score_sum = 0;
    steals = 0;
    high_water = 0;
    consume_minor = 0;
  }

(* Entries currently poppable.  Racy by design (steal victim selection);
   any torn answer only misdirects a steal attempt, never corrupts. *)
let[@inline] entries t =
  let s = Atomic.get t.state in
  hi_of s - lo_of s

(* Owner pop: -1 when empty (option-free so the consume loop stays
   allocation-free).  The CAS advances [lo]; failure means a thief moved
   [hi] between the read and the CAS — retry on the fresh word. *)
let rec pop t =
  let s = Atomic.get t.state in
  let lo = lo_of s in
  if lo >= hi_of s then -1
  else begin
    let v = Array.unsafe_get t.ring lo in
    if Atomic.compare_and_set t.state s (s + (1 lsl bits)) then v else pop t
  end

(* Owner publish: the caller has written [ring.(0 .. count-1)] and the
   [ring_range]/[ring_aa] fields for an empty ring.  Bumping the version
   invalidates any in-flight steal of the previous contents. *)
let publish t ~range_idx ~aa ~key_base ~key_mod ~count =
  t.ring_range <- range_idx;
  t.ring_aa <- aa;
  t.key_base <- key_base;
  t.key_mod <- key_mod;
  if count > t.high_water then t.high_water <- count;
  let ver = (ver_of (Atomic.get t.state) + 1) land mask in
  Atomic.set t.state (pack ~ver ~lo:0 ~hi:count)

let flush t =
  let ver = (ver_of (Atomic.get t.state) + 1) land mask in
  Atomic.set t.state (pack ~ver ~lo:0 ~hi:0)

(* Steal up to half of [victim]'s live entries into [thief]'s (empty)
   ring.  The suffix is copied BEFORE the CAS; a failed CAS (the victim
   popped past the split, refilled, or another thief got there first)
   discards the copy.  The split is advanced until the entries' byte
   group changes, so victim and thief never read-modify-write the same
   bitmap byte (see the header); if no such split exists the steal is
   abandoned.  The key parameters are read racily alongside the entries —
   a concurrent refill changes them, but also bumps the version, which
   fails the CAS and discards everything read. *)
let try_steal ~victim ~thief =
  let s = Atomic.get victim.state in
  let lo = lo_of s and hi = hi_of s in
  if hi - lo < 2 then false
  else begin
    let key_base = victim.key_base and key_mod = victim.key_mod in
    let group v =
      let v = v - key_base in
      (if key_mod > 0 then v mod key_mod else v) lsr 3
    in
    let split = ref (hi - ((hi - lo) / 2)) in
    while
      !split < hi
      && group (Array.unsafe_get victim.ring (!split - 1))
         = group (Array.unsafe_get victim.ring !split)
    do
      incr split
    done;
    let split = !split in
    if split >= hi then false
    else begin
      let cnt = hi - split in
      let range_idx = victim.ring_range and aa = victim.ring_aa in
      Array.blit victim.ring split thief.ring 0 cnt;
      if Atomic.compare_and_set victim.state s (pack ~ver:(ver_of s) ~lo ~hi:split)
      then begin
        publish thief ~range_idx ~aa ~key_base ~key_mod ~count:cnt;
        thief.steals <- thief.steals + 1;
        true
      end
      else false
    end
  end

(* Constant-time (amortised) concurrent free: appended to the shard's
   private queue, drained serially in shard order before the CP commit. *)
let queue_free t pvbn =
  if t.n_free = Array.length t.free_q then begin
    let bigger = Array.make (2 * Array.length t.free_q) 0 in
    Array.blit t.free_q 0 bigger 0 t.n_free;
    t.free_q <- bigger
  end;
  t.free_q.(t.n_free) <- pvbn;
  t.n_free <- t.n_free + 1

let reset_window t =
  t.allocated <- 0;
  t.harvested <- 0;
  t.taken <- 0;
  t.score_sum <- 0;
  t.steals <- 0;
  t.high_water <- 0;
  t.consume_minor <- 0
