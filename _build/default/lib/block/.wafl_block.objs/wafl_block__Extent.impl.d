lib/block/extent.ml: Format Int List
