lib/workload/oltp.ml: Cp Flexvol Fs Rng Wafl_core Wafl_util
