(** Domain-parallel scan engine.

    A fixed-size pool of worker domains executes indexed chunks of work.
    Chunks are handed out by an atomic counter, so any domain may run any
    chunk — but every chunk index runs exactly once and results land in
    preassigned slots (or are merged in ascending chunk order by the
    caller), which makes the output of a pool-driven scan bit-identical
    to the serial loop regardless of how many domains participated.

    Determinism contract: for [map], slot [i] of the result array holds
    [f i]; for [run], the caller must write chunk [i]'s results only to
    state owned by chunk [i] (disjoint array slices, per-chunk
    accumulators merged afterwards in index order).  Under that
    discipline the pool introduces no observable nondeterminism.

    Memory model: each chunk's non-atomic writes are published to the
    caller by the final decrement of an atomic pending-counter, which
    the caller reads before touching any result (release/acquire in the
    OCaml 5 memory model) — no additional synchronisation is needed for
    the per-chunk result slots.

    Pools are reentrancy-safe: a [run]/[map] issued while the pool is
    already driving work (e.g. from inside a worker's chunk function)
    falls back to an inline serial loop instead of deadlocking.

    Worker attribution: when a telemetry instance is installed at
    dispatch time, every parallel [run]/[map] times each participant's
    chunk execution and emits [par.tasks]/[par.chunks]/[par.busy_ns]/
    [par.idle_ns] counters plus [par.workers]/[par.busy_frac]/
    [par.imbalance] gauges (imbalance = max busy over mean busy; 1.0 is
    perfectly balanced).  With telemetry uninstalled the timing is
    skipped entirely, preserving the pool's allocation profile. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (the caller
    participates as the [jobs]-th).  [jobs] is clamped to at least 1;
    [jobs = 1] yields a poolless handle whose [run]/[map] are plain
    serial loops. *)

val jobs : t -> int
(** Degree of parallelism, including the calling domain. *)

val shutdown : t -> unit
(** Join and discard the worker domains.  Subsequent [run]/[map] on the
    handle degrade to serial.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] — even on exceptions. *)

val run : t -> chunks:int -> f:(int -> unit) -> unit
(** Execute [f 0 .. f (chunks - 1)], each exactly once, distributed over
    the pool's domains.  Blocks until every chunk finished.  If any
    chunks raised, re-raises the exception of the lowest-indexed failed
    chunk (matching what the serial loop would have raised first);
    remaining chunks still run to completion first. *)

val run_with_slot : t -> chunks:int -> f:(slot:int -> int -> unit) -> unit
(** [run] with the executing participant's slot index exposed: slot 0 is
    the calling domain, slots 1 .. jobs-1 the workers.  A participant
    drains one chunk at a time, so two chunk executions with the same
    slot never overlap — per-slot scratch state (rings, accumulators,
    [Gc.minor_words] windows) is single-writer by construction.  Serial
    and degraded paths run every chunk on the caller with slot 0. *)

val map : t -> chunks:int -> f:(int -> 'a) -> 'a array
(** Like [run], but collects [| f 0; ...; f (chunks - 1) |].  Slot order
    is by chunk index, never by completion order. *)

val chunk_bounds : total:int -> align:int -> chunks:int -> (int * int) array
(** [chunk_bounds ~total ~align ~chunks] splits the range
    [0 .. total - 1] into at most [chunks] contiguous [(start, len)]
    pieces of near-equal size whose internal boundaries fall on
    multiples of [align].  Every piece is non-empty and the pieces cover
    the range exactly; returns [[||]] when [total <= 0].  Purely
    arithmetic — the same inputs always produce the same split. *)

(** {1 Process-wide default pool}

    Mirrors [Telemetry.install]: subsystems take [?pool] and fall back
    to the installed pool via [resolve], so a single [--jobs N] at the
    CLI parallelises every scan without threading a handle through the
    whole call graph. *)

val install : jobs:int -> unit
(** Install a fresh process-wide pool, shutting down any previous one. *)

val uninstall : unit -> unit
(** Shut down and remove the process-wide pool, if any. *)

val installed : unit -> t option

val resolve : t option -> t option
(** [resolve (Some p)] is [Some p]; [resolve None] is [installed ()].
    The conventional first line of every [?pool] entry point. *)

val effective_jobs : t option -> int
(** [jobs] of [resolve pool], or 1 when no pool is available. *)
