lib/experiments/fig9.mli: Common Wafl_sim
