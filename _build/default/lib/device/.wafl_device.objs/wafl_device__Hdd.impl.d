lib/device/hdd.ml: Profile
