lib/workload/sequential.ml: Flexvol Fs Wafl_core
