type classification = {
  full_stripes : int;
  partial_stripes : int;
  blocks_in_full : int;
  blocks_in_partial : int;
  parity_writes : int;
  extra_reads : int;
}

let classify geom ~vbns =
  let data = Geometry.data_devices geom in
  let parity = Geometry.parity_devices geom in
  (* Count written blocks per stripe. *)
  let per_stripe = Hashtbl.create 256 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun vbn ->
      if not (Hashtbl.mem seen vbn) then begin
        Hashtbl.add seen vbn ();
        let s = Geometry.stripe_of_vbn geom vbn in
        let count = try Hashtbl.find per_stripe s with Not_found -> 0 in
        Hashtbl.replace per_stripe s (count + 1)
      end)
    vbns;
  Hashtbl.fold
    (fun _stripe count acc ->
      if count = data then
        {
          acc with
          full_stripes = acc.full_stripes + 1;
          blocks_in_full = acc.blocks_in_full + count;
          parity_writes = acc.parity_writes + parity;
        }
      else
        {
          acc with
          partial_stripes = acc.partial_stripes + 1;
          blocks_in_partial = acc.blocks_in_partial + count;
          parity_writes = acc.parity_writes + parity;
          extra_reads = acc.extra_reads + count + parity;
        })
    per_stripe
    {
      full_stripes = 0;
      partial_stripes = 0;
      blocks_in_full = 0;
      blocks_in_partial = 0;
      parity_writes = 0;
      extra_reads = 0;
    }

let fullness_ratio c =
  let total = c.blocks_in_full + c.blocks_in_partial in
  if total = 0 then 0.0 else float_of_int c.blocks_in_full /. float_of_int total

let total_device_writes _geom c = c.blocks_in_full + c.blocks_in_partial + c.parity_writes

let total_device_reads c = c.extra_reads

let pp fmt c =
  Format.fprintf fmt "full=%d partial=%d (blocks %d/%d) parity_w=%d extra_r=%d"
    c.full_stripes c.partial_stripes c.blocks_in_full c.blocks_in_partial c.parity_writes
    c.extra_reads
