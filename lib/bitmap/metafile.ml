open Wafl_util
open Wafl_block

type io_stats = { page_writes : int; page_reads : int; flushes : int }

type t = {
  map : Bitmap.t;
  page_bits : int;
  page_shift : int;  (* log2 page_bits, or -1 when page_bits is not a power of 2 *)
  n_pages : int;
  dirty : Bitmap.t;  (* one bit per metafile page *)
  mutable n_dirty : int;
  mutable page_writes : int;
  mutable page_reads : int;
  mutable flushes : int;
}

let create ?(page_bits = Units.bits_per_metafile_block) ~blocks () =
  assert (blocks > 0 && page_bits > 0);
  let n_pages = Bitops.ceil_div blocks page_bits in
  let map = Bitmap.create ~bits:blocks in
  (* Only the map is durable state worth vouching for; the dirty bitmap
     below is rebuilt from scratch on every mount. *)
  Integrity.track (Bitmap.store map);
  (* Transient state must start from zero explicitly: in a re-entered mmap
     directory the bitmap's backing file may still hold the bits a previous
     process (or a crashed run) left behind. *)
  let dirty = Bitmap.create ~bits:n_pages in
  Bitmap.clear_range dirty ~start:0 ~len:n_pages;
  {
    map;
    page_bits;
    page_shift =
      (if page_bits land (page_bits - 1) = 0 then Bitops.ctz page_bits else -1);
    n_pages;
    dirty;
    n_dirty = 0;
    page_writes = 0;
    page_reads = 0;
    flushes = 0;
  }

let blocks t = Bitmap.length t.map
let pages t = t.n_pages
let page_bits t = t.page_bits
let store t = Bitmap.store t.map

(* Page of an in-bounds VBN.  Every helper that maps VBNs to pages funnels
   through here so the power-of-two shift (the common case: page sizes are
   powers of two) replaces the division everywhere, bounds checks
   included. *)
let[@inline] page_index t vbn =
  if t.page_shift >= 0 then vbn lsr t.page_shift else vbn / t.page_bits

let page_of_block t vbn =
  if vbn < 0 || vbn >= blocks t then invalid_arg "Metafile: VBN out of bounds";
  page_index t vbn

let mark_dirty t page =
  if not (Bitmap.get t.dirty page) then begin
    Bitmap.set t.dirty page;
    t.n_dirty <- t.n_dirty + 1
  end

let is_allocated t vbn = Bitmap.get t.map vbn

let allocate t vbn =
  if Bitmap.get t.map vbn then invalid_arg "Metafile.allocate: VBN already allocated";
  Bitmap.set t.map vbn;
  mark_dirty t (page_of_block t vbn)

(* Trusted hot-path variant: the caller guarantees [vbn] is currently
   free (harvest rings only hold free blocks, revalidated on epoch
   change), so the already-allocated re-check of {!allocate} is skipped.
   [Bitmap.set] still bounds-checks the index. *)
let[@inline] allocate_harvested t vbn =
  Bitmap.set t.map vbn;
  mark_dirty t (page_index t vbn)

(* {!allocate_harvested} for the multi-domain allocation front-end:
   instead of touching the shared dirty bitmap (a cross-domain race), the
   dirtied page is recorded as one byte in the caller's [touched] page
   set — the allocation-side mirror of {!free_batch_into}.  Callers fold
   the set into the dirty state serially with {!mark_touched_dirty}. *)
let[@inline] allocate_harvested_touched t vbn ~touched =
  Bitmap.set t.map vbn;
  Bytes.unsafe_set touched (page_index t vbn) '\001'

let free t vbn =
  if not (Bitmap.get t.map vbn) then invalid_arg "Metafile.free: VBN already free";
  Bitmap.clear t.map vbn;
  mark_dirty t (page_of_block t vbn)

let allocate_range t ~start ~len =
  if Bitmap.count_set_in t.map ~start ~len <> 0 then
    invalid_arg "Metafile.allocate_range: range not fully free";
  Bitmap.set_range t.map ~start ~len;
  if len > 0 then
    for page = page_index t start to page_index t (start + len - 1) do
      mark_dirty t page
    done

let free_count t ~start ~len = Bitmap.count_clear_in t.map ~start ~len
let fold_free_in t ~start ~len ~init ~f = Bitmap.fold_clear_in t.map ~start ~len ~init ~f
let free_mask32 t pos = Bitmap.clear_mask32 t.map pos

let harvest_free_into t ~start ~len ~offset ~dst ~pos =
  Bitmap.harvest_clear_into t.map ~start ~len ~offset ~dst ~pos
let used_count t ~start ~len = Bitmap.count_set_in t.map ~start ~len
let free_extents t ~start ~len = Bitmap.free_extents t.map ~start ~len
let free_run_stats t ~start ~len = Bitmap.free_run_stats t.map ~start ~len
let find_first_free t ~from = Bitmap.find_first_clear t.map ~from

(* Parallel delayed-free support.  [free_batch_into] clears map bits
   without touching the shared dirty bitmap: each pool domain gets a
   slice of [vbns] pre-bucketed so its map/page bytes are disjoint from
   every other domain's, and records the pages it dirtied as one byte
   per page in [touched] (bytes of a Bytes.t are distinct locations, so
   domains writing their own pages' bytes never race).  The caller then
   folds [touched] into the dirty state serially with
   [mark_touched_dirty], in ascending page order — the dirty set, and
   hence the flush count, is identical to per-free [free] calls. *)

let free_batch_into t ~vbns ~pos ~len ~touched =
  for i = pos to pos + len - 1 do
    let vbn = vbns.(i) in
    if not (Bitmap.get t.map vbn) then invalid_arg "Metafile.free: VBN already free";
    Bitmap.clear t.map vbn;
    Bytes.unsafe_set touched (page_index t vbn) '\001'
  done

let mark_touched_dirty t ~touched =
  if Bytes.length touched <> t.n_pages then
    invalid_arg "Metafile.mark_touched_dirty: touched length <> pages";
  for page = 0 to t.n_pages - 1 do
    if Bytes.unsafe_get touched page <> '\000' then mark_dirty t page
  done

let dirty_pages t = t.n_dirty

(* Seal the byte range each dirty page covers before the dirty set is
   cleared.  Guarded on the store actually being integrity-tracked so the
   crash point only appears in runs where sealing happens — heap-backed
   crash-matrix sequences are unchanged. *)
let seal_dirty t =
  let store = Bitmap.store t.map in
  if t.n_dirty > 0 && Integrity.tracked store then begin
    Wafl_fault.Crash.point "integrity.seal";
    let total_bytes = Pagestore.length_bytes store in
    let rec go from =
      match Bitmap.find_first_set t.dirty ~from with
      | None -> ()
      | Some page ->
        let bit0 = page * t.page_bits in
        let bit1 = min ((page + 1) * t.page_bits) (Bitmap.length t.map) in
        let pos = bit0 / 8 in
        let len = min (Bitops.ceil_div bit1 8) total_bytes - pos in
        Integrity.seal_range store ~pos ~len;
        go (page + 1)
    in
    go 0
  end

let flush t =
  let written = t.n_dirty in
  seal_dirty t;
  t.page_writes <- t.page_writes + written;
  t.flushes <- t.flushes + 1;
  Bitmap.clear_range t.dirty ~start:0 ~len:t.n_pages;
  t.n_dirty <- 0;
  written

let scan_read t ~start ~len =
  if start < 0 || len < 0 || start + len > blocks t then
    invalid_arg "Metafile.scan_read: range out of bounds";
  if len = 0 then 0
  else begin
    let first = page_index t start and last = page_index t (start + len - 1) in
    let n = last - first + 1 in
    t.page_reads <- t.page_reads + n;
    n
  end

let stats t = { page_writes = t.page_writes; page_reads = t.page_reads; flushes = t.flushes }

let reset_stats t =
  t.page_writes <- 0;
  t.page_reads <- 0;
  t.flushes <- 0

let snapshot t = Bitmap.copy t.map

let load t image =
  if Bitmap.length image <> blocks t then invalid_arg "Metafile.load: length mismatch";
  Bitmap.blit ~src:image ~dst:t.map;
  (* The blit legitimately rewrote every byte of the map store; re-stamp
     the sidecar state as the committed truth.  Corruption checks against
     the pre-blit persisted bytes must run before [load] — the verified
     remount does ([Mount.restore]). *)
  Integrity.reseal_all (Bitmap.store t.map);
  Bitmap.clear_range t.dirty ~start:0 ~len:t.n_pages;
  t.n_dirty <- 0
